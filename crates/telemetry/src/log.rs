//! [`TelemetryLog`]: a validated, time-sorted, *columnar* store of action
//! records, and [`LogView`]: the zero-copy selection the rest of the stack
//! computes over.
//!
//! The unbiased-distribution estimator needs fast nearest-in-time lookups
//! (binary search over timestamps), so the log maintains a sorted-by-time
//! invariant. Appends may arrive out of order (e.g. merged shards); the log
//! tracks sortedness and `ensure_sorted` performs a stable sort on demand.
//!
//! Storage is struct-of-arrays ([`ColumnStore`]): seven parallel columns,
//! one per record field. The analysis hot loops (histogram fills, α
//! partitioning, slice filtering) each touch only a few fields per record,
//! so the columnar layout keeps them cache-linear instead of striding over
//! 48-byte rows. Row-level [`ActionRecord`]s survive only at the
//! codec/ingest boundary: readers materialize one record per input line and
//! `push` scatters it into the columns; writers gather one record per
//! output line.

use std::borrow::Cow;

use crate::error::TelemetryError;
use crate::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use crate::time::SimTime;

/// Struct-of-arrays storage for action records: seven parallel columns of
/// equal length, one slot per record. The store is a dumb container — it
/// performs no validation and maintains no ordering; [`TelemetryLog`] owns
/// those invariants.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnStore {
    time_ms: Vec<i64>,
    latency_ms: Vec<f64>,
    action: Vec<u8>,
    user: Vec<u64>,
    class: Vec<u8>,
    tz_offset_ms: Vec<i64>,
    outcome: Vec<u8>,
}

impl ColumnStore {
    /// An empty store.
    pub fn new() -> Self {
        ColumnStore::default()
    }

    /// An empty store with room for `n` records per column.
    pub fn with_capacity(n: usize) -> Self {
        ColumnStore {
            time_ms: Vec::with_capacity(n),
            latency_ms: Vec::with_capacity(n),
            action: Vec::with_capacity(n),
            user: Vec::with_capacity(n),
            class: Vec::with_capacity(n),
            tz_offset_ms: Vec::with_capacity(n),
            outcome: Vec::with_capacity(n),
        }
    }

    /// Number of records (every column has this length).
    pub fn len(&self) -> usize {
        self.time_ms.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.time_ms.is_empty()
    }

    /// Scatter one record into the columns (append).
    pub fn push(&mut self, r: &ActionRecord) {
        self.time_ms.push(r.time.millis());
        self.latency_ms.push(r.latency_ms);
        self.action.push(r.action.code());
        self.user.push(r.user.0);
        self.class.push(r.class.code());
        self.tz_offset_ms.push(r.tz_offset_ms);
        self.outcome.push(r.outcome.code());
    }

    /// Scatter one record into storage position `idx`, shifting the tail.
    pub fn insert(&mut self, idx: usize, r: &ActionRecord) {
        self.time_ms.insert(idx, r.time.millis());
        self.latency_ms.insert(idx, r.latency_ms);
        self.action.insert(idx, r.action.code());
        self.user.insert(idx, r.user.0);
        self.class.insert(idx, r.class.code());
        self.tz_offset_ms.insert(idx, r.tz_offset_ms);
        self.outcome.insert(idx, r.outcome.code());
    }

    /// Gather one row back into a record.
    pub fn get(&self, i: usize) -> ActionRecord {
        ActionRecord {
            time: SimTime(self.time_ms[i]),
            action: ActionType::from_code(self.action[i]),
            latency_ms: self.latency_ms[i],
            user: UserId(self.user[i]),
            class: UserClass::from_code(self.class[i]),
            tz_offset_ms: self.tz_offset_ms[i],
            outcome: Outcome::from_code(self.outcome[i]),
        }
    }

    /// Drop every row past the first `len`, keeping column capacity (a
    /// no-op when `len >= self.len()`). The incremental-snapshot path
    /// reuses a store by truncating to the unchanged prefix and
    /// re-appending only the shards that changed.
    pub fn truncate(&mut self, len: usize) {
        self.time_ms.truncate(len);
        self.latency_ms.truncate(len);
        self.action.truncate(len);
        self.user.truncate(len);
        self.class.truncate(len);
        self.tz_offset_ms.truncate(len);
        self.outcome.truncate(len);
    }

    /// Append every row of `other`, preserving its storage order.
    pub fn extend_from(&mut self, other: &ColumnStore) {
        self.time_ms.extend_from_slice(&other.time_ms);
        self.latency_ms.extend_from_slice(&other.latency_ms);
        self.action.extend_from_slice(&other.action);
        self.user.extend_from_slice(&other.user);
        self.class.extend_from_slice(&other.class);
        self.tz_offset_ms.extend_from_slice(&other.tz_offset_ms);
        self.outcome.extend_from_slice(&other.outcome);
    }

    /// The timestamp column, milliseconds.
    pub fn times(&self) -> &[i64] {
        &self.time_ms
    }

    /// The latency column, milliseconds.
    pub fn latencies(&self) -> &[f64] {
        &self.latency_ms
    }

    /// The action-type column ([`ActionType::code`] values).
    pub fn actions(&self) -> &[u8] {
        &self.action
    }

    /// The user-id column.
    pub fn users(&self) -> &[u64] {
        &self.user
    }

    /// The user-class column ([`UserClass::code`] values).
    pub fn classes(&self) -> &[u8] {
        &self.class
    }

    /// The timezone-offset column, milliseconds.
    pub fn tz_offsets(&self) -> &[i64] {
        &self.tz_offset_ms
    }

    /// The outcome column ([`Outcome::code`] values).
    pub fn outcomes(&self) -> &[u8] {
        &self.outcome
    }

    /// Field-for-field identity of rows `i` and `j` at the bit level
    /// (latency compared as bits), matching the dedup hash-set key.
    pub fn row_equals_row(&self, i: usize, j: usize) -> bool {
        self.time_ms[i] == self.time_ms[j]
            && self.action[i] == self.action[j]
            && self.latency_ms[i].to_bits() == self.latency_ms[j].to_bits()
            && self.user[i] == self.user[j]
            && self.class[i] == self.class[j]
            && self.tz_offset_ms[i] == self.tz_offset_ms[j]
            && self.outcome[i] == self.outcome[j]
    }

    /// Field-for-field identity of row `i` and a record, bit-exact latency.
    pub fn row_equals_record(&self, i: usize, r: &ActionRecord) -> bool {
        self.time_ms[i] == r.time.millis()
            && self.action[i] == r.action.code()
            && self.latency_ms[i].to_bits() == r.latency_ms.to_bits()
            && self.user[i] == r.user.0
            && self.class[i] == r.class.code()
            && self.tz_offset_ms[i] == r.tz_offset_ms
            && self.outcome[i] == r.outcome.code()
    }

    /// The hashable dedup identity of row `i` (latency as bits).
    fn row_key(&self, i: usize) -> (i64, u8, u64, u64, u8, i64, u8) {
        (
            self.time_ms[i],
            self.action[i],
            self.latency_ms[i].to_bits(),
            self.user[i],
            self.class[i],
            self.tz_offset_ms[i],
            self.outcome[i],
        )
    }

    /// A new store holding the rows at `idx`, in that order.
    pub fn gather(&self, idx: &[u32]) -> ColumnStore {
        ColumnStore {
            time_ms: idx.iter().map(|&i| self.time_ms[i as usize]).collect(),
            latency_ms: idx.iter().map(|&i| self.latency_ms[i as usize]).collect(),
            action: idx.iter().map(|&i| self.action[i as usize]).collect(),
            user: idx.iter().map(|&i| self.user[i as usize]).collect(),
            class: idx.iter().map(|&i| self.class[i as usize]).collect(),
            tz_offset_ms: idx.iter().map(|&i| self.tz_offset_ms[i as usize]).collect(),
            outcome: idx.iter().map(|&i| self.outcome[i as usize]).collect(),
        }
    }

    /// Whether the timestamp column is non-decreasing.
    pub fn is_time_sorted(&self) -> bool {
        self.time_ms.windows(2).all(|w| w[0] <= w[1])
    }

    /// Stable sort by timestamp: sorts a row-index permutation (stable on
    /// ties, preserving arrival order) and gathers every column through it.
    pub fn sort_by_time(&mut self) {
        let mut perm: Vec<u32> = (0..self.len() as u32).collect();
        perm.sort_by_key(|&i| self.time_ms[i as usize]);
        *self = self.gather(&perm);
    }

    /// Materialize every row (codec/checkpoint boundary only).
    pub fn to_records(&self) -> Vec<ActionRecord> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Assemble a store directly from its seven column vectors (the binary
    /// container reader's materialization path). Errors unless every column
    /// has the same length; performs no semantic validation — callers own
    /// that, exactly as with [`ColumnStore::push`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_vecs(
        time_ms: Vec<i64>,
        latency_ms: Vec<f64>,
        action: Vec<u8>,
        user: Vec<u64>,
        class: Vec<u8>,
        tz_offset_ms: Vec<i64>,
        outcome: Vec<u8>,
    ) -> Result<ColumnStore, TelemetryError> {
        let n = time_ms.len();
        let lens = [
            latency_ms.len(),
            action.len(),
            user.len(),
            class.len(),
            tz_offset_ms.len(),
            outcome.len(),
        ];
        if lens.iter().any(|&l| l != n) {
            return Err(TelemetryError::Container {
                reason: format!("column lengths differ: time has {n} rows, others {lens:?}"),
            });
        }
        Ok(ColumnStore {
            time_ms,
            latency_ms,
            action,
            user,
            class,
            tz_offset_ms,
            outcome,
        })
    }
}

/// A borrowed, zero-copy selection of a [`TelemetryLog`]'s rows: references
/// to the seven columns plus an optional selection vector of row indices
/// (ascending, i.e. storage order). This is the currency the analysis stack
/// computes over — building one costs index construction only, never row
/// copies.
///
/// Ownership rules: a `LogView` borrows its columns from the log for `'a`;
/// the selection is a [`Cow`], so derived views (filters, dedup) can own
/// their index vector while still borrowing the columns. [`LogView::borrowed`]
/// reborrows any view at a shorter lifetime for passing down to kernels;
/// [`LogView::materialize`] is the one escape hatch back to an owned log
/// (and the only place rows are copied).
#[derive(Debug, Clone)]
pub struct LogView<'a> {
    time_ms: &'a [i64],
    latency_ms: &'a [f64],
    action: &'a [u8],
    user: &'a [u64],
    class: &'a [u8],
    tz_offset_ms: &'a [i64],
    outcome: &'a [u8],
    /// `None` = every row; `Some` = the selected storage indices, ascending.
    sel: Option<Cow<'a, [u32]>>,
    /// Whether the viewed rows are in time order.
    sorted: bool,
}

impl<'a> LogView<'a> {
    fn full(cols: &'a ColumnStore, sorted: bool) -> LogView<'a> {
        LogView::full_range(cols, 0, cols.len(), sorted)
    }

    fn full_range(cols: &'a ColumnStore, lo: usize, hi: usize, sorted: bool) -> LogView<'a> {
        LogView {
            time_ms: &cols.time_ms[lo..hi],
            latency_ms: &cols.latency_ms[lo..hi],
            action: &cols.action[lo..hi],
            user: &cols.user[lo..hi],
            class: &cols.class[lo..hi],
            tz_offset_ms: &cols.tz_offset_ms[lo..hi],
            outcome: &cols.outcome[lo..hi],
            sel: None,
            sorted,
        }
    }

    /// Build a full (unselected) view over seven raw column slices — the
    /// zero-copy entry point for memory-mapped container columns, which
    /// never pass through a [`ColumnStore`]. Errors unless every slice has
    /// the same length; `sorted` asserts that the time slice is already
    /// known non-decreasing (debug builds re-check).
    #[allow(clippy::too_many_arguments)]
    pub fn from_columns(
        time_ms: &'a [i64],
        latency_ms: &'a [f64],
        action: &'a [u8],
        user: &'a [u64],
        class: &'a [u8],
        tz_offset_ms: &'a [i64],
        outcome: &'a [u8],
        sorted: bool,
    ) -> Result<LogView<'a>, TelemetryError> {
        let n = time_ms.len();
        let lens = [
            latency_ms.len(),
            action.len(),
            user.len(),
            class.len(),
            tz_offset_ms.len(),
            outcome.len(),
        ];
        if lens.iter().any(|&l| l != n) {
            return Err(TelemetryError::Container {
                reason: format!("column lengths differ: time has {n} rows, others {lens:?}"),
            });
        }
        debug_assert!(
            !sorted || time_ms.windows(2).all(|w| w[0] <= w[1]),
            "from_columns claimed sorted over an unsorted time column"
        );
        Ok(LogView {
            time_ms,
            latency_ms,
            action,
            user,
            class,
            tz_offset_ms,
            outcome,
            sel: None,
            sorted,
        })
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.time_ms.len(),
        }
    }

    /// Whether the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage index of view row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> usize {
        match &self.sel {
            Some(sel) => sel[i] as usize,
            None => i,
        }
    }

    /// Timestamp of view row `i`, milliseconds.
    #[inline]
    pub fn time_at(&self, i: usize) -> i64 {
        self.time_ms[self.row(i)]
    }

    /// Latency of view row `i`, milliseconds.
    #[inline]
    pub fn latency_at(&self, i: usize) -> f64 {
        self.latency_ms[self.row(i)]
    }

    /// Action-type code of view row `i`.
    #[inline]
    pub fn action_at(&self, i: usize) -> u8 {
        self.action[self.row(i)]
    }

    /// User id of view row `i`.
    #[inline]
    pub fn user_at(&self, i: usize) -> u64 {
        self.user[self.row(i)]
    }

    /// User-class code of view row `i`.
    #[inline]
    pub fn class_at(&self, i: usize) -> u8 {
        self.class[self.row(i)]
    }

    /// Timezone offset of view row `i`, milliseconds.
    #[inline]
    pub fn tz_offset_at(&self, i: usize) -> i64 {
        self.tz_offset_ms[self.row(i)]
    }

    /// Outcome code of view row `i`.
    #[inline]
    pub fn outcome_at(&self, i: usize) -> u8 {
        self.outcome[self.row(i)]
    }

    /// Gather view row `i` into a record (boundary use only — kernels
    /// should read the column they need via the `*_at` accessors).
    pub fn get(&self, i: usize) -> ActionRecord {
        let r = self.row(i);
        ActionRecord {
            time: SimTime(self.time_ms[r]),
            action: ActionType::from_code(self.action[r]),
            latency_ms: self.latency_ms[r],
            user: UserId(self.user[r]),
            class: UserClass::from_code(self.class[r]),
            tz_offset_ms: self.tz_offset_ms[r],
            outcome: Outcome::from_code(self.outcome[r]),
        }
    }

    /// Iterate the selected rows as materialized records, in view order.
    pub fn iter(&self) -> impl Iterator<Item = ActionRecord> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Whether the viewed rows are in time order.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Error with the first violating view index unless the view is sorted.
    pub fn require_sorted(&self) -> Result<(), TelemetryError> {
        if !self.sorted {
            let index = (1..self.len())
                .find(|&i| self.time_at(i) < self.time_at(i - 1))
                .unwrap_or(0);
            return Err(TelemetryError::Unsorted { index });
        }
        Ok(())
    }

    /// Reborrow this view at a shorter lifetime (cheap: slices are copied,
    /// an owned selection is borrowed, never cloned).
    pub fn borrowed(&self) -> LogView<'_> {
        LogView {
            time_ms: self.time_ms,
            latency_ms: self.latency_ms,
            action: self.action,
            user: self.user,
            class: self.class,
            tz_offset_ms: self.tz_offset_ms,
            outcome: self.outcome,
            sel: self.sel.as_ref().map(|s| Cow::Borrowed(&**s)),
            sorted: self.sorted,
        }
    }

    /// Narrow this view to the given selection of *storage* indices (must
    /// be ascending and a subset of the current selection — filters and
    /// dedup produce exactly that).
    pub fn with_selection(&self, sel: Vec<u32>) -> LogView<'a> {
        debug_assert!(
            sel.windows(2).all(|w| w[0] < w[1]),
            "selection not ascending"
        );
        LogView {
            time_ms: self.time_ms,
            latency_ms: self.latency_ms,
            action: self.action,
            user: self.user,
            class: self.class,
            tz_offset_ms: self.tz_offset_ms,
            outcome: self.outcome,
            sel: Some(Cow::Owned(sel)),
            sorted: self.sorted,
        }
    }

    /// First view index for which `pred(time)` is false (times ascending).
    fn partition_point_time(&self, pred: impl Fn(i64) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.time_at(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// View-index range `[lo, hi)` of rows with time in `[from, to)`.
    /// Requires a sorted view.
    pub fn range_indices(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> Result<(usize, usize), TelemetryError> {
        self.require_sorted()?;
        let lo = self.partition_point_time(|t| t < from.millis());
        let hi = self.partition_point_time(|t| t < to.millis());
        Ok((lo, hi))
    }

    /// The sub-view of rows with time in `[from, to)`. Requires a sorted
    /// view; costs two binary searches and zero copies.
    pub fn range(&self, from: SimTime, to: SimTime) -> Result<LogView<'_>, TelemetryError> {
        let (lo, hi) = self.range_indices(from, to)?;
        Ok(match &self.sel {
            Some(sel) => LogView {
                sel: Some(Cow::Borrowed(&sel[lo..hi])),
                ..self.borrowed()
            },
            None => LogView {
                time_ms: &self.time_ms[lo..hi],
                latency_ms: &self.latency_ms[lo..hi],
                action: &self.action[lo..hi],
                user: &self.user[lo..hi],
                class: &self.class[lo..hi],
                tz_offset_ms: &self.tz_offset_ms[lo..hi],
                outcome: &self.outcome[lo..hi],
                sel: None,
                sorted: self.sorted,
            },
        })
    }

    /// The row(s) nearest in time to `t`: the view-index range `[lo, hi)`
    /// of *all* rows sharing the minimal |time - t|, so the caller can
    /// break ties randomly as the paper's §2.2 prescribes.
    ///
    /// Errors on an empty or unsorted view.
    pub fn nearest_in_time(&self, t: SimTime) -> Result<(usize, usize), TelemetryError> {
        self.require_sorted()?;
        let n = self.len();
        if n == 0 {
            return Err(TelemetryError::InvalidRecord(
                "nearest_in_time on empty log".into(),
            ));
        }
        let t = t.millis();
        // First row at or after t, then candidate distances on each side.
        let idx = self.partition_point_time(|x| x < t);
        let best = if idx == 0 {
            self.time_at(0) - t
        } else if idx == n {
            t - self.time_at(n - 1)
        } else {
            (self.time_at(idx) - t).min(t - self.time_at(idx - 1))
        };
        // All rows at distance `best` form two (possibly empty) runs of
        // equal timestamps: one at t-best, one at t+best. Locate them.
        let lo = self.partition_point_time(|x| x < t - best);
        let hi = self.partition_point_time(|x| x <= t + best);
        debug_assert!(lo < hi, "at least one row at the minimal distance");
        Ok((lo, hi))
    }

    /// Earliest viewed time (min scan if unsorted).
    pub fn start_time(&self) -> Option<SimTime> {
        if self.is_empty() {
            None
        } else if self.sorted {
            Some(SimTime(self.time_at(0)))
        } else {
            (0..self.len()).map(|i| self.time_at(i)).min().map(SimTime)
        }
    }

    /// Latest viewed time.
    pub fn end_time(&self) -> Option<SimTime> {
        if self.is_empty() {
            None
        } else if self.sorted {
            Some(SimTime(self.time_at(self.len() - 1)))
        } else {
            (0..self.len()).map(|i| self.time_at(i)).max().map(SimTime)
        }
    }

    /// The `(timestamp ms, latency)` series of the view, in time order.
    /// Errors on an unsorted view.
    pub fn latency_series(&self) -> Result<Vec<(i64, f64)>, TelemetryError> {
        self.require_sorted()?;
        Ok((0..self.len())
            .map(|i| (self.time_at(i), self.latency_at(i)))
            .collect())
    }

    /// Length of the longest run of viewed rows sharing one timestamp.
    pub fn max_equal_time_run(&self) -> usize {
        let mut max = 0usize;
        let mut run = 0usize;
        let mut last: Option<i64> = None;
        for i in 0..self.len() {
            let t = self.time_at(i);
            if last == Some(t) {
                run += 1;
            } else {
                run = 1;
                last = Some(t);
            }
            max = max.max(run);
        }
        max
    }

    /// Drop exact field-for-field duplicate rows (keep-first within each
    /// equal-timestamp run), shrinking the selection — no rows are copied.
    /// Semantics are identical to [`TelemetryLog::dedup_exact_par`] on the
    /// materialized view, including the data-dependent (never
    /// thread-dependent) serial fallback. Returns the deduplicated view and
    /// how many rows were dropped.
    pub fn dedup_exact_par(&self, threads: usize) -> (LogView<'a>, usize) {
        const MAX_RUN: usize = 256;
        let n = self.len();
        if !self.sorted || self.max_equal_time_run() > MAX_RUN {
            // Serial hash-set pass, keep-first in view order.
            let mut seen = std::collections::HashSet::with_capacity(n);
            let mut keep: Vec<u32> = Vec::with_capacity(n);
            for i in 0..n {
                let r = self.row(i);
                let key = (
                    self.time_ms[r],
                    self.action[r],
                    self.latency_ms[r].to_bits(),
                    self.user[r],
                    self.class[r],
                    self.tz_offset_ms[r],
                    self.outcome[r],
                );
                if seen.insert(key) {
                    keep.push(r as u32);
                }
            }
            let removed = n - keep.len();
            if removed == 0 {
                return (self.clone(), 0);
            }
            return (self.with_selection(keep), removed);
        }
        // Sorted: duplicates necessarily share a timestamp, so a row is a
        // repeat iff an identical row occurs earlier within its run of
        // equal timestamps. Each chunk decides its rows independently
        // (backward scans may read across a chunk boundary, which is safe
        // on the shared columns) and duplicate indices concatenate in
        // chunk order — identical to the serial pass for any thread count.
        let view = self.borrowed();
        let (parts, _) = autosens_exec::run_chunks(
            "dedup_exact",
            n,
            autosens_exec::scan_chunk_size_for(n),
            threads,
            |_, range| {
                let mut dups: Vec<usize> = Vec::new();
                for i in range {
                    let t = view.time_at(i);
                    let mut j = i;
                    while j > 0 && view.time_at(j - 1) == t {
                        j -= 1;
                        if view_rows_equal(&view, j, i) {
                            dups.push(i);
                            break;
                        }
                    }
                }
                dups
            },
        )
        .expect("dedup scan does not panic");
        let removed: usize = parts.iter().map(Vec::len).sum();
        if removed == 0 {
            return (self.clone(), 0);
        }
        let mut dup_iter = parts.iter().flatten().copied();
        let mut next_dup = dup_iter.next();
        let mut keep: Vec<u32> = Vec::with_capacity(n - removed);
        for i in 0..n {
            if Some(i) == next_dup {
                next_dup = dup_iter.next();
            } else {
                keep.push(self.row(i) as u32);
            }
        }
        (self.with_selection(keep), removed)
    }

    /// Copy the selected rows into an owned, sorted log — the single
    /// escape hatch from view land, and the only place rows are copied.
    pub fn materialize(&self) -> TelemetryLog {
        let cols = match &self.sel {
            Some(sel) => ColumnStore {
                time_ms: sel.iter().map(|&i| self.time_ms[i as usize]).collect(),
                latency_ms: sel.iter().map(|&i| self.latency_ms[i as usize]).collect(),
                action: sel.iter().map(|&i| self.action[i as usize]).collect(),
                user: sel.iter().map(|&i| self.user[i as usize]).collect(),
                class: sel.iter().map(|&i| self.class[i as usize]).collect(),
                tz_offset_ms: sel.iter().map(|&i| self.tz_offset_ms[i as usize]).collect(),
                outcome: sel.iter().map(|&i| self.outcome[i as usize]).collect(),
            },
            None => ColumnStore {
                time_ms: self.time_ms.to_vec(),
                latency_ms: self.latency_ms.to_vec(),
                action: self.action.to_vec(),
                user: self.user.to_vec(),
                class: self.class.to_vec(),
                tz_offset_ms: self.tz_offset_ms.to_vec(),
                outcome: self.outcome.to_vec(),
            },
        };
        let mut log = TelemetryLog {
            sorted: self.sorted,
            cols,
        };
        log.ensure_sorted();
        log
    }
}

/// Free-function row comparison so the dedup chunk closure (which already
/// borrows the view) can compare without re-borrowing `self`.
fn view_rows_equal(v: &LogView<'_>, i: usize, j: usize) -> bool {
    let (a, b) = (v.row(i), v.row(j));
    v.time_ms[a] == v.time_ms[b]
        && v.action[a] == v.action[b]
        && v.latency_ms[a].to_bits() == v.latency_ms[b].to_bits()
        && v.user[a] == v.user[b]
        && v.class[a] == v.class[b]
        && v.tz_offset_ms[a] == v.tz_offset_ms[b]
        && v.outcome[a] == v.outcome[b]
}

/// A collection of action records with a maintained time order, stored
/// columnar.
///
/// ```
/// use autosens_telemetry::log::TelemetryLog;
/// use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
/// use autosens_telemetry::time::SimTime;
///
/// let rec = |t: i64, latency: f64| ActionRecord {
///     time: SimTime(t),
///     action: ActionType::SelectMail,
///     latency_ms: latency,
///     user: UserId(1),
///     class: UserClass::Business,
///     tz_offset_ms: 0,
///     outcome: Outcome::Success,
/// };
/// // Out-of-order input is sorted on construction...
/// let log = TelemetryLog::from_records(vec![rec(2000, 5.0), rec(0, 1.0)]).unwrap();
/// assert!(log.is_sorted());
/// // ...enabling binary-searched range and nearest-in-time queries.
/// assert_eq!(log.range(SimTime(0), SimTime(1000)).unwrap().len(), 1);
/// let (lo, hi) = log.nearest_in_time(SimTime(1500)).unwrap();
/// assert_eq!((lo, hi), (1, 2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TelemetryLog {
    cols: ColumnStore,
    sorted: bool,
}

impl TelemetryLog {
    /// An empty log.
    pub fn new() -> Self {
        TelemetryLog {
            cols: ColumnStore::new(),
            sorted: true,
        }
    }

    /// Build from a vector of records, validating each. The result is sorted.
    pub fn from_records(records: Vec<ActionRecord>) -> Result<Self, TelemetryError> {
        for r in &records {
            r.validate()?;
        }
        Ok(TelemetryLog::from_trusted_records(records))
    }

    /// Build from records that are individually known-valid — e.g. records
    /// filtered out of an existing (validated) log, or emitted by the
    /// simulator, which constructs only valid records. Skips the per-record
    /// re-validation pass — the dominant cost of materializing large
    /// sub-logs — but still establishes the time-order invariant. Debug
    /// builds re-validate to catch misuse.
    pub fn from_trusted_records(records: Vec<ActionRecord>) -> Self {
        debug_assert!(
            records.iter().all(|r| r.validate().is_ok()),
            "from_trusted_records fed an invalid record"
        );
        let mut cols = ColumnStore::with_capacity(records.len());
        for r in &records {
            cols.push(r);
        }
        TelemetryLog::from_columns(cols)
    }

    /// Build directly from columns whose rows are individually known-valid
    /// (e.g. concatenated stream shards). Establishes the time-order
    /// invariant without materializing a single row.
    pub fn from_columns(cols: ColumnStore) -> Self {
        debug_assert!(
            (0..cols.len()).all(|i| cols.get(i).validate().is_ok()),
            "from_columns fed an invalid row"
        );
        let mut log = TelemetryLog {
            sorted: cols.is_time_sorted(),
            cols,
        };
        log.ensure_sorted();
        log
    }

    /// Append one validated record, tracking whether order is preserved.
    pub fn push(&mut self, record: ActionRecord) -> Result<(), TelemetryError> {
        record.validate()?;
        if let Some(&last) = self.cols.time_ms.last() {
            if record.time.millis() < last {
                self.sorted = false;
            }
        }
        self.cols.push(&record);
        Ok(())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Whether the records are currently in time order.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Stable-sort the records by time if needed.
    pub fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.cols.sort_by_time();
            self.sorted = true;
        }
    }

    /// The columnar storage.
    pub fn columns(&self) -> &ColumnStore {
        &self.cols
    }

    /// Take the columnar storage back out of the log without copying a
    /// row — the inverse of [`TelemetryLog::from_columns`], for callers
    /// that lend their store to an analysis and want it back afterwards.
    pub fn into_columns(self) -> ColumnStore {
        self.cols
    }

    /// The zero-copy view of every row (storage order).
    pub fn view(&self) -> LogView<'_> {
        LogView::full(&self.cols, self.sorted)
    }

    /// Gather record `i` (boundary use — hot loops should go through
    /// [`TelemetryLog::view`] and read columns).
    pub fn get(&self, i: usize) -> ActionRecord {
        self.cols.get(i)
    }

    /// Materialize all records in storage order (codec/checkpoint boundary
    /// only — this copies every row). Time-ordered iff [`Self::is_sorted`].
    pub fn to_records(&self) -> Vec<ActionRecord> {
        self.cols.to_records()
    }

    /// Iterate records (materialized per row), in storage order.
    pub fn iter(&self) -> LogIter<'_> {
        LogIter { log: self, i: 0 }
    }

    /// The view of rows whose time lies in `[from, to)`.
    ///
    /// Requires a sorted log; errors otherwise (call
    /// [`Self::ensure_sorted`] first).
    pub fn range(&self, from: SimTime, to: SimTime) -> Result<LogView<'_>, TelemetryError> {
        let (lo, hi) = self.range_indices(from, to)?;
        Ok(LogView::full_range(&self.cols, lo, hi, true))
    }

    /// Index range `[lo, hi)` of records with time in `[from, to)`.
    pub fn range_indices(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> Result<(usize, usize), TelemetryError> {
        self.require_sorted()?;
        let lo = self.cols.time_ms.partition_point(|&t| t < from.millis());
        let hi = self.cols.time_ms.partition_point(|&t| t < to.millis());
        Ok((lo, hi))
    }

    /// The record(s) nearest in time to `t`: returns the index range
    /// `[lo, hi)` of *all* records sharing the minimal |time - t|, so the
    /// caller can break ties randomly as the paper's §2.2 prescribes.
    ///
    /// Errors on an empty or unsorted log.
    pub fn nearest_in_time(&self, t: SimTime) -> Result<(usize, usize), TelemetryError> {
        self.require_sorted()?;
        self.view().nearest_in_time(t)
    }

    /// Merge another log's records into this one (e.g. shards produced by
    /// parallel exporters), restoring the time order afterwards.
    ///
    /// When both inputs are already sorted this is a single two-pointer
    /// merge pass (stable: on ties, `self`'s records keep preceding
    /// `other`'s, exactly as append-then-stable-sort ordered them); only
    /// unsorted inputs fall back to append + full re-sort.
    pub fn merge(&mut self, other: &TelemetryLog) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.cols = other.cols.clone();
            self.sorted = other.sorted;
            self.ensure_sorted();
            return;
        }
        if !(self.sorted && other.sorted) {
            // Unsorted fallback: append, then one stable re-sort.
            self.cols.extend_from(&other.cols);
            self.sorted = false;
            self.ensure_sorted();
            return;
        }
        if self.cols.time_ms.last() <= other.cols.time_ms.first() {
            // Common shard case: `other` entirely follows — pure append.
            self.cols.extend_from(&other.cols);
            return;
        }
        let (a, b) = (&self.cols, &other.cols);
        let (n, m) = (a.len(), b.len());
        let mut out = ColumnStore::with_capacity(n + m);
        let (mut i, mut j) = (0usize, 0usize);
        // Emit index runs instead of single rows so each column extends
        // from contiguous slices.
        while i < n && j < m {
            if a.time_ms[i] <= b.time_ms[j] {
                let start = i;
                while i < n && a.time_ms[i] <= b.time_ms[j] {
                    i += 1;
                }
                out.extend_range(a, start, i);
            } else {
                let start = j;
                while j < m && b.time_ms[j] < a.time_ms[i] {
                    j += 1;
                }
                out.extend_range(b, start, j);
            }
        }
        out.extend_range(a, i, n);
        out.extend_range(b, j, m);
        self.cols = out;
    }

    /// Remove exact field-for-field duplicate records (re-delivered upload
    /// batches), keeping the first occurrence of each. Storage order is
    /// preserved, so sortedness is unaffected. Returns how many records
    /// were removed.
    pub fn dedup_exact(&mut self) -> usize {
        let n = self.cols.len();
        let mut seen: std::collections::HashSet<(i64, u8, u64, u64, u8, i64, u8)> =
            std::collections::HashSet::with_capacity(n);
        let mut keep: Vec<u32> = Vec::with_capacity(n);
        for i in 0..n {
            if seen.insert(self.cols.row_key(i)) {
                keep.push(i as u32);
            }
        }
        let removed = n - keep.len();
        if removed > 0 {
            self.cols = self.cols.gather(&keep);
        }
        removed
    }

    /// Data-parallel variant of [`TelemetryLog::dedup_exact`] for sorted
    /// logs — see [`LogView::dedup_exact_par`] for the algorithm and the
    /// determinism argument. The result is identical to `dedup_exact` for
    /// any thread count; unsorted logs and pathological equal-timestamp
    /// runs fall back to the serial hash-set pass (a condition on the data,
    /// never on `threads`).
    pub fn dedup_exact_par(&mut self, threads: usize) -> usize {
        if !self.sorted {
            return self.dedup_exact();
        }
        let (deduped, removed) = self.view().dedup_exact_par(threads);
        if removed > 0 {
            let keep = deduped
                .sel
                .as_ref()
                .expect("a shrunk view carries a selection");
            self.cols = self.cols.gather(keep);
        }
        removed
    }

    /// Retain only successful actions (the paper analyzes successes only).
    pub fn successes_only(&self) -> TelemetryLog {
        let keep: Vec<u32> = (0..self.cols.len() as u32)
            .filter(|&i| self.cols.outcome[i as usize] == Outcome::Success.code())
            .collect();
        TelemetryLog {
            cols: self.cols.gather(&keep),
            sorted: self.sorted,
        }
    }

    /// Earliest record time (requires sorted, non-empty log).
    pub fn start_time(&self) -> Option<SimTime> {
        if self.sorted {
            self.cols.time_ms.first().copied().map(SimTime)
        } else {
            self.cols.time_ms.iter().min().copied().map(SimTime)
        }
    }

    /// Latest record time.
    pub fn end_time(&self) -> Option<SimTime> {
        if self.sorted {
            self.cols.time_ms.last().copied().map(SimTime)
        } else {
            self.cols.time_ms.iter().max().copied().map(SimTime)
        }
    }

    /// The `(timestamp ms, latency)` series of the log, in time order.
    /// Errors on an unsorted log.
    pub fn latency_series(&self) -> Result<Vec<(i64, f64)>, TelemetryError> {
        self.require_sorted()?;
        Ok(self
            .cols
            .time_ms
            .iter()
            .zip(&self.cols.latency_ms)
            .map(|(&t, &l)| (t, l))
            .collect())
    }

    /// Error with the first violating index unless the log is sorted.
    pub fn require_sorted(&self) -> Result<(), TelemetryError> {
        if !self.sorted {
            // Find the first violation for a useful message.
            let index = self
                .cols
                .time_ms
                .windows(2)
                .position(|w| w[1] < w[0])
                .map(|i| i + 1)
                .unwrap_or(0);
            return Err(TelemetryError::Unsorted { index });
        }
        Ok(())
    }
}

impl ColumnStore {
    /// Append rows `[lo, hi)` of `other` (contiguous per-column copies).
    fn extend_range(&mut self, other: &ColumnStore, lo: usize, hi: usize) {
        self.time_ms.extend_from_slice(&other.time_ms[lo..hi]);
        self.latency_ms.extend_from_slice(&other.latency_ms[lo..hi]);
        self.action.extend_from_slice(&other.action[lo..hi]);
        self.user.extend_from_slice(&other.user[lo..hi]);
        self.class.extend_from_slice(&other.class[lo..hi]);
        self.tz_offset_ms
            .extend_from_slice(&other.tz_offset_ms[lo..hi]);
        self.outcome.extend_from_slice(&other.outcome[lo..hi]);
    }
}

/// Iterator over a log's records, materializing one per step.
pub struct LogIter<'a> {
    log: &'a TelemetryLog,
    i: usize,
}

impl Iterator for LogIter<'_> {
    type Item = ActionRecord;

    fn next(&mut self) -> Option<ActionRecord> {
        if self.i < self.log.len() {
            let r = self.log.get(self.i);
            self.i += 1;
            Some(r)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.log.len() - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for LogIter<'_> {}

impl<'a> IntoIterator for &'a TelemetryLog {
    type Item = ActionRecord;
    type IntoIter = LogIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ActionType, UserClass, UserId};

    fn rec(t_ms: i64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t_ms),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(1),
            class: UserClass::Business,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    #[test]
    fn push_tracks_sortedness() {
        let mut log = TelemetryLog::new();
        assert!(log.is_sorted());
        log.push(rec(10, 1.0)).unwrap();
        log.push(rec(20, 2.0)).unwrap();
        assert!(log.is_sorted());
        log.push(rec(15, 3.0)).unwrap();
        assert!(!log.is_sorted());
        log.ensure_sorted();
        assert!(log.is_sorted());
        let times: Vec<i64> = log.iter().map(|r| r.time.millis()).collect();
        assert_eq!(times, vec![10, 15, 20]);
    }

    #[test]
    fn push_validates() {
        let mut log = TelemetryLog::new();
        assert!(log.push(rec(0, -1.0)).is_err());
        assert!(log.is_empty());
    }

    #[test]
    fn from_records_sorts_and_validates() {
        let log =
            TelemetryLog::from_records(vec![rec(30, 1.0), rec(10, 2.0), rec(20, 3.0)]).unwrap();
        assert!(log.is_sorted());
        assert_eq!(log.len(), 3);
        assert_eq!(log.get(0).time.millis(), 10);
        assert!(TelemetryLog::from_records(vec![rec(0, f64::NAN)]).is_err());
    }

    #[test]
    fn columns_round_trip_records() {
        let records = vec![rec(10, 1.0), rec(20, 2.0), rec(30, 3.0)];
        let log = TelemetryLog::from_records(records.clone()).unwrap();
        assert_eq!(log.to_records(), records);
        assert_eq!(log.columns().times(), &[10, 20, 30]);
        assert_eq!(log.columns().latencies(), &[1.0, 2.0, 3.0]);
        let rebuilt = TelemetryLog::from_columns(log.columns().clone());
        assert_eq!(rebuilt.to_records(), records);
    }

    #[test]
    fn range_selects_half_open_interval() {
        let log =
            TelemetryLog::from_records((0..10).map(|i| rec(i * 10, i as f64)).collect()).unwrap();
        let r = log.range(SimTime(20), SimTime(50)).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(0).time.millis(), 20);
        assert_eq!(r.get(2).time.millis(), 40);
        assert_eq!(log.range(SimTime(95), SimTime(200)).unwrap().len(), 0);
        let (lo, hi) = log.range_indices(SimTime(20), SimTime(50)).unwrap();
        assert_eq!((lo, hi), (2, 5));
    }

    #[test]
    fn range_requires_sorted() {
        let mut log = TelemetryLog::new();
        log.push(rec(20, 1.0)).unwrap();
        log.push(rec(10, 1.0)).unwrap();
        assert!(matches!(
            log.range(SimTime(0), SimTime(100)),
            Err(TelemetryError::Unsorted { index: 1 })
        ));
    }

    #[test]
    fn nearest_in_time_basic() {
        let log =
            TelemetryLog::from_records(vec![rec(0, 0.0), rec(100, 1.0), rec(200, 2.0)]).unwrap();
        // Closest to 140 is the record at 100.
        let (lo, hi) = log.nearest_in_time(SimTime(140)).unwrap();
        assert_eq!((lo, hi), (1, 2));
        // Exactly between 100 and 200: both are at distance 50.
        let (lo, hi) = log.nearest_in_time(SimTime(150)).unwrap();
        assert_eq!((lo, hi), (1, 3));
        // Before the first record.
        let (lo, hi) = log.nearest_in_time(SimTime(-50)).unwrap();
        assert_eq!((lo, hi), (0, 1));
        // After the last record.
        let (lo, hi) = log.nearest_in_time(SimTime(10_000)).unwrap();
        assert_eq!((lo, hi), (2, 3));
    }

    #[test]
    fn nearest_in_time_with_duplicate_timestamps() {
        let log = TelemetryLog::from_records(vec![
            rec(100, 1.0),
            rec(100, 2.0),
            rec(100, 3.0),
            rec(300, 4.0),
        ])
        .unwrap();
        // All three records at t=100 tie for nearest.
        let (lo, hi) = log.nearest_in_time(SimTime(120)).unwrap();
        assert_eq!((lo, hi), (0, 3));
        // Exact hit on a timestamp includes only that run.
        let (lo, hi) = log.nearest_in_time(SimTime(100)).unwrap();
        assert_eq!((lo, hi), (0, 3));
        // Equidistant between the runs: both runs tie.
        let (lo, hi) = log.nearest_in_time(SimTime(200)).unwrap();
        assert_eq!((lo, hi), (0, 4));
    }

    #[test]
    fn nearest_in_time_errors() {
        let log = TelemetryLog::new();
        assert!(log.nearest_in_time(SimTime(0)).is_err());
        let mut log = TelemetryLog::new();
        log.push(rec(10, 1.0)).unwrap();
        log.push(rec(5, 1.0)).unwrap();
        assert!(log.nearest_in_time(SimTime(0)).is_err());
    }

    #[test]
    fn merge_combines_shards_in_time_order() {
        let mut a = TelemetryLog::from_records(vec![rec(0, 1.0), rec(100, 2.0)]).unwrap();
        let b = TelemetryLog::from_records(vec![rec(50, 3.0), rec(150, 4.0)]).unwrap();
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert!(a.is_sorted());
        let times: Vec<i64> = a.iter().map(|r| r.time.millis()).collect();
        assert_eq!(times, vec![0, 50, 100, 150]);
        // Merging an empty log is a no-op.
        a.merge(&TelemetryLog::new());
        assert_eq!(a.len(), 4);
        // Merging into an empty log copies.
        let mut empty = TelemetryLog::new();
        empty.merge(&a);
        assert_eq!(empty.to_records(), a.to_records());
    }

    #[test]
    fn merge_is_stable_on_ties_and_matches_resort() {
        // On equal timestamps, self's records must precede other's — the
        // order append-then-stable-sort produced before the single-pass
        // merge existed.
        let mut a =
            TelemetryLog::from_records(vec![rec(10, 1.0), rec(20, 2.0), rec(20, 3.0)]).unwrap();
        let b = TelemetryLog::from_records(vec![rec(5, 4.0), rec(20, 5.0), rec(30, 6.0)]).unwrap();
        let mut reference = TelemetryLog::new();
        for r in a.iter().chain(b.iter()) {
            reference.push(r).unwrap();
        }
        reference.ensure_sorted();
        a.merge(&b);
        assert_eq!(a.to_records(), reference.to_records());
        // Append fast path: other entirely after self.
        let mut c = TelemetryLog::from_records(vec![rec(0, 1.0), rec(1, 2.0)]).unwrap();
        let d = TelemetryLog::from_records(vec![rec(1, 3.0), rec(2, 4.0)]).unwrap();
        c.merge(&d);
        let lat: Vec<f64> = c.iter().map(|r| r.latency_ms).collect();
        assert_eq!(lat, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn merge_unsorted_fallback_still_sorts() {
        let mut a = TelemetryLog::new();
        a.push(rec(100, 1.0)).unwrap();
        a.push(rec(0, 2.0)).unwrap();
        assert!(!a.is_sorted());
        let b = TelemetryLog::from_records(vec![rec(50, 3.0)]).unwrap();
        a.merge(&b);
        assert!(a.is_sorted());
        let times: Vec<i64> = a.iter().map(|r| r.time.millis()).collect();
        assert_eq!(times, vec![0, 50, 100]);
    }

    #[test]
    fn successes_only_filters_errors() {
        let mut bad = rec(50, 1.0);
        bad.outcome = Outcome::Error;
        let log = TelemetryLog::from_records(vec![rec(0, 1.0), bad, rec(100, 2.0)]).unwrap();
        let ok = log.successes_only();
        assert_eq!(ok.len(), 2);
        assert!(ok.iter().all(|r| r.outcome == Outcome::Success));
    }

    #[test]
    fn start_end_and_series() {
        let log = TelemetryLog::from_records(vec![rec(5, 1.5), rec(15, 2.5)]).unwrap();
        assert_eq!(log.start_time(), Some(SimTime(5)));
        assert_eq!(log.end_time(), Some(SimTime(15)));
        assert_eq!(log.latency_series().unwrap(), vec![(5, 1.5), (15, 2.5)]);
        assert_eq!(TelemetryLog::new().start_time(), None);
    }

    #[test]
    fn unsorted_start_end_still_correct() {
        let mut log = TelemetryLog::new();
        log.push(rec(50, 1.0)).unwrap();
        log.push(rec(10, 1.0)).unwrap();
        assert_eq!(log.start_time(), Some(SimTime(10)));
        assert_eq!(log.end_time(), Some(SimTime(50)));
    }

    #[test]
    fn dedup_exact_removes_only_exact_copies() {
        // Two exact duplicates of the t=10 record, non-adjacent within the
        // equal-time run, plus a same-time record differing in latency.
        let log = TelemetryLog::from_records(vec![
            rec(10, 1.0),
            rec(10, 2.0),
            rec(10, 1.0),
            rec(20, 3.0),
            rec(10, 1.0),
        ])
        .unwrap();
        let mut log = log;
        let removed = log.dedup_exact();
        assert_eq!(removed, 2);
        assert_eq!(log.len(), 3);
        assert!(log.is_sorted());
        let latencies: Vec<f64> = log.iter().map(|r| r.latency_ms).collect();
        assert_eq!(latencies, vec![1.0, 2.0, 3.0]);
        // Unsorted logs dedup too, preserving storage order.
        let mut unsorted = TelemetryLog::new();
        unsorted.push(rec(30, 1.0)).unwrap();
        unsorted.push(rec(10, 1.0)).unwrap();
        unsorted.push(rec(30, 1.0)).unwrap();
        assert_eq!(unsorted.dedup_exact(), 1);
        assert!(!unsorted.is_sorted());
        assert_eq!(unsorted.get(0).time.millis(), 30);
        // A clean log is untouched.
        let mut clean = TelemetryLog::from_records(vec![rec(0, 1.0), rec(5, 2.0)]).unwrap();
        assert_eq!(clean.dedup_exact(), 0);
        assert_eq!(clean.len(), 2);
    }

    #[test]
    fn dedup_exact_par_matches_serial_for_any_thread_count() {
        // Duplicates scattered through equal-time runs across many chunks.
        let mut records: Vec<ActionRecord> = Vec::new();
        for i in 0..5_000i64 {
            records.push(rec(i / 3, (i % 7) as f64 + 1.0));
        }
        // Exact copies of every 10th record.
        for i in (0..5_000i64).step_by(10) {
            records.push(rec(i / 3, (i % 7) as f64 + 1.0));
        }
        let mut serial = TelemetryLog::from_records(records.clone()).unwrap();
        let removed_serial = serial.dedup_exact();
        assert!(removed_serial > 0);
        for threads in [1, 2, 4, 8] {
            let mut par = TelemetryLog::from_records(records.clone()).unwrap();
            let removed = par.dedup_exact_par(threads);
            assert_eq!(removed, removed_serial, "threads={threads}");
            assert_eq!(par.to_records(), serial.to_records(), "threads={threads}");
        }
    }

    #[test]
    fn dedup_exact_par_falls_back_on_unsorted_and_long_runs() {
        // Unsorted: falls back to the serial hash-set pass.
        let mut unsorted = TelemetryLog::new();
        unsorted.push(rec(30, 1.0)).unwrap();
        unsorted.push(rec(10, 1.0)).unwrap();
        unsorted.push(rec(30, 1.0)).unwrap();
        assert_eq!(unsorted.dedup_exact_par(4), 1);
        // One giant equal-timestamp run (beyond the run-scan cap): the
        // fallback still removes the exact duplicates.
        let mut records: Vec<ActionRecord> = (0..600).map(|i| rec(42, i as f64 + 1.0)).collect();
        records.push(rec(42, 1.0));
        let mut log = TelemetryLog::from_records(records).unwrap();
        assert_eq!(log.dedup_exact_par(4), 1);
        assert_eq!(log.len(), 600);
    }

    #[test]
    fn view_dedup_matches_owned_dedup() {
        let mut records: Vec<ActionRecord> = Vec::new();
        for i in 0..1_000i64 {
            records.push(rec(i / 5, (i % 3) as f64));
        }
        for i in (0..1_000i64).step_by(7) {
            records.push(rec(i / 5, (i % 3) as f64));
        }
        let mut owned = TelemetryLog::from_records(records.clone()).unwrap();
        let removed_owned = owned.dedup_exact();
        let log = TelemetryLog::from_records(records).unwrap();
        for threads in [1, 2, 4, 8] {
            let (view, removed) = log.view().dedup_exact_par(threads);
            assert_eq!(removed, removed_owned, "threads={threads}");
            assert_eq!(
                view.materialize().to_records(),
                owned.to_records(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn from_trusted_records_sorts_like_from_records() {
        let records = vec![rec(2000, 5.0), rec(0, 1.0), rec(1000, 2.0)];
        let a = TelemetryLog::from_records(records.clone()).unwrap();
        let b = TelemetryLog::from_trusted_records(records);
        assert!(b.is_sorted());
        assert_eq!(a.to_records(), b.to_records());
    }

    #[test]
    fn into_iterator_works() {
        let log = TelemetryLog::from_records(vec![rec(0, 1.0), rec(10, 2.0)]).unwrap();
        let total: f64 = (&log).into_iter().map(|r| r.latency_ms).sum();
        assert_eq!(total, 3.0);
    }

    #[test]
    fn view_selection_and_accessors() {
        let log =
            TelemetryLog::from_records((0..10).map(|i| rec(i * 10, i as f64)).collect()).unwrap();
        let full = log.view();
        assert_eq!(full.len(), 10);
        assert!(full.is_sorted());
        assert_eq!(full.time_at(3), 30);
        assert_eq!(full.get(3), log.get(3));
        // Select even storage rows.
        let sel: Vec<u32> = (0..10).filter(|i| i % 2 == 0).collect();
        let even = full.with_selection(sel);
        assert_eq!(even.len(), 5);
        assert_eq!(even.time_at(2), 40);
        assert_eq!(even.row(2), 4);
        assert!(even.is_sorted());
        // Sub-range of a selected view.
        let mid = even.range(SimTime(20), SimTime(80)).unwrap();
        let times: Vec<i64> = mid.iter().map(|r| r.time.millis()).collect();
        assert_eq!(times, vec![20, 40, 60]);
        // nearest_in_time works in view coordinates.
        let (lo, hi) = even.nearest_in_time(SimTime(45)).unwrap();
        assert_eq!((lo, hi), (2, 3));
        // Materialize copies exactly the selected rows.
        let owned = even.materialize();
        assert_eq!(owned.len(), 5);
        assert_eq!(owned.get(1).time.millis(), 20);
        // Borrowed reborrow sees the same rows.
        let re = even.borrowed();
        assert_eq!(re.len(), even.len());
        assert_eq!(re.latency_series().unwrap(), even.latency_series().unwrap());
    }

    #[test]
    fn view_start_end_and_run_length() {
        let log = TelemetryLog::from_records(vec![
            rec(10, 1.0),
            rec(10, 2.0),
            rec(20, 3.0),
            rec(20, 4.0),
            rec(20, 5.0),
        ])
        .unwrap();
        let v = log.view();
        assert_eq!(v.start_time(), Some(SimTime(10)));
        assert_eq!(v.end_time(), Some(SimTime(20)));
        assert_eq!(v.max_equal_time_run(), 3);
        let sel = v.with_selection(vec![0, 2, 3]);
        assert_eq!(sel.max_equal_time_run(), 2);
    }
}
