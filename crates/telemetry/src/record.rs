//! The telemetry data model: one record per user action.
//!
//! The paper (§2.1, §3.1) requires tuples `(T, A, L, M)` — timestamp, action
//! type, client-measured end-to-end latency, and optional user metadata —
//! plus an anonymized per-user identifier for the conditioning analysis
//! (§3.4) and a success/error outcome (errors are excluded, §3.1).

use serde::{Deserialize, Serialize};

use crate::error::TelemetryError;
use crate::time::SimTime;

/// Anonymized user identifier (stand-in for the paper's anonymized GUID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u64);

/// The user action types analyzed in the paper (§3.2), plus a catch-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ActionType {
    /// Click and open an email item.
    SelectMail,
    /// Click and switch mail folder.
    SwitchFolder,
    /// Search over mailbox content.
    Search,
    /// Click to send a composed email (asynchronous in the UI).
    ComposeSend,
    /// Any other action type present in the logs but not analyzed.
    Other,
}

impl ActionType {
    /// The four action types the paper's evaluation focuses on.
    pub fn analyzed() -> [ActionType; 4] {
        [
            ActionType::SelectMail,
            ActionType::SwitchFolder,
            ActionType::Search,
            ActionType::ComposeSend,
        ]
    }

    /// Stable string name (used by the codecs).
    pub fn name(self) -> &'static str {
        match self {
            ActionType::SelectMail => "SelectMail",
            ActionType::SwitchFolder => "SwitchFolder",
            ActionType::Search => "Search",
            ActionType::ComposeSend => "ComposeSend",
            ActionType::Other => "Other",
        }
    }

    /// Parse from the codec string name.
    pub fn parse(s: &str) -> Option<ActionType> {
        match s {
            "SelectMail" => Some(ActionType::SelectMail),
            "SwitchFolder" => Some(ActionType::SwitchFolder),
            "Search" => Some(ActionType::Search),
            "ComposeSend" => Some(ActionType::ComposeSend),
            "Other" => Some(ActionType::Other),
            _ => None,
        }
    }

    /// Dense code for the columnar store's `action` column.
    pub fn code(self) -> u8 {
        match self {
            ActionType::SelectMail => 0,
            ActionType::SwitchFolder => 1,
            ActionType::Search => 2,
            ActionType::ComposeSend => 3,
            ActionType::Other => 4,
        }
    }

    /// Inverse of [`ActionType::code`]. Column bytes only ever come from
    /// `code`, so an out-of-range byte is a store-corruption bug.
    pub fn from_code(code: u8) -> ActionType {
        match code {
            0 => ActionType::SelectMail,
            1 => ActionType::SwitchFolder,
            2 => ActionType::Search,
            3 => ActionType::ComposeSend,
            4 => ActionType::Other,
            _ => unreachable!("invalid ActionType code {code}"),
        }
    }
}

/// User subscription class (§3.3): paying business users vs. free consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UserClass {
    /// Paying commercial-subscription user.
    Business,
    /// Free-tier consumer user.
    Consumer,
}

impl UserClass {
    /// Both classes, business first.
    pub fn all() -> [UserClass; 2] {
        [UserClass::Business, UserClass::Consumer]
    }

    /// Stable string name (used by the codecs).
    pub fn name(self) -> &'static str {
        match self {
            UserClass::Business => "Business",
            UserClass::Consumer => "Consumer",
        }
    }

    /// Parse from the codec string name.
    pub fn parse(s: &str) -> Option<UserClass> {
        match s {
            "Business" => Some(UserClass::Business),
            "Consumer" => Some(UserClass::Consumer),
            _ => None,
        }
    }

    /// Dense code for the columnar store's `class` column.
    pub fn code(self) -> u8 {
        match self {
            UserClass::Business => 0,
            UserClass::Consumer => 1,
        }
    }

    /// Inverse of [`UserClass::code`].
    pub fn from_code(code: u8) -> UserClass {
        match code {
            0 => UserClass::Business,
            1 => UserClass::Consumer,
            _ => unreachable!("invalid UserClass code {code}"),
        }
    }
}

/// Whether the action completed successfully. The paper's analysis uses only
/// successful actions (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// The action completed and returned a successful response.
    Success,
    /// The action returned an error.
    Error,
}

impl Outcome {
    /// Stable string name (used by the codecs).
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Success => "Success",
            Outcome::Error => "Error",
        }
    }

    /// Parse from the codec string name.
    pub fn parse(s: &str) -> Option<Outcome> {
        match s {
            "Success" => Some(Outcome::Success),
            "Error" => Some(Outcome::Error),
            _ => None,
        }
    }

    /// Dense code for the columnar store's `outcome` column.
    pub fn code(self) -> u8 {
        match self {
            Outcome::Success => 0,
            Outcome::Error => 1,
        }
    }

    /// Inverse of [`Outcome::code`].
    pub fn from_code(code: u8) -> Outcome {
        match code {
            0 => Outcome::Success,
            1 => Outcome::Error,
            _ => unreachable!("invalid Outcome code {code}"),
        }
    }
}

/// One logged user action: the `(T, A, L, M)` tuple of the paper plus the
/// anonymized user id and outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActionRecord {
    /// Action start time, as recorded at the server.
    pub time: SimTime,
    /// What the user did.
    pub action: ActionType,
    /// Client-measured end-to-end latency, milliseconds.
    pub latency_ms: f64,
    /// Anonymized user identifier.
    pub user: UserId,
    /// Subscription class of the user (metadata `M`).
    pub class: UserClass,
    /// The user's fixed timezone offset from simulation time, in ms. Carried
    /// on the record so local-time slicing needs no side lookup table.
    pub tz_offset_ms: i64,
    /// Success or error.
    pub outcome: Outcome,
}

impl ActionRecord {
    /// Validate the semantic invariants a record must satisfy before it may
    /// enter a [`crate::log::TelemetryLog`]: finite, non-negative latency and
    /// a sane timezone offset (within ±14h like real-world offsets).
    pub fn validate(&self) -> Result<(), TelemetryError> {
        if !self.latency_ms.is_finite() || self.latency_ms < 0.0 {
            return Err(TelemetryError::InvalidRecord(format!(
                "latency must be finite and >= 0, got {}",
                self.latency_ms
            )));
        }
        let fourteen_hours = 14 * crate::time::MS_PER_HOUR;
        if self.tz_offset_ms.abs() > fourteen_hours {
            return Err(TelemetryError::InvalidRecord(format!(
                "timezone offset {} ms outside +/-14h",
                self.tz_offset_ms
            )));
        }
        Ok(())
    }

    /// Convenience: local hour slot for the confounder analysis.
    pub fn hour_slot(&self) -> crate::time::HourSlot {
        self.time.hour_slot_local(self.tz_offset_ms)
    }

    /// Convenience: local day period (§3.6).
    pub fn day_period(&self) -> crate::time::DayPeriod {
        self.time.day_period_local(self.tz_offset_ms)
    }

    /// Convenience: local calendar month (§3.7).
    pub fn month(&self) -> crate::time::Month {
        self.time.month_local(self.tz_offset_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{DayPeriod, Month, MS_PER_HOUR};

    fn record() -> ActionRecord {
        ActionRecord {
            time: SimTime::from_dhm(35, 10, 0), // Feb 5, 10:00
            action: ActionType::SelectMail,
            latency_ms: 312.5,
            user: UserId(17),
            class: UserClass::Business,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    #[test]
    fn enum_name_parse_roundtrip() {
        for a in [
            ActionType::SelectMail,
            ActionType::SwitchFolder,
            ActionType::Search,
            ActionType::ComposeSend,
            ActionType::Other,
        ] {
            assert_eq!(ActionType::parse(a.name()), Some(a));
        }
        for c in UserClass::all() {
            assert_eq!(UserClass::parse(c.name()), Some(c));
        }
        for o in [Outcome::Success, Outcome::Error] {
            assert_eq!(Outcome::parse(o.name()), Some(o));
        }
        assert_eq!(ActionType::parse("SelectEmail"), None);
        assert_eq!(UserClass::parse(""), None);
        assert_eq!(Outcome::parse("ok"), None);
    }

    #[test]
    fn analyzed_action_types_match_paper() {
        let a = ActionType::analyzed();
        assert_eq!(a.len(), 4);
        assert!(a.contains(&ActionType::SelectMail));
        assert!(a.contains(&ActionType::ComposeSend));
        assert!(!a.contains(&ActionType::Other));
    }

    #[test]
    fn validation_accepts_good_records() {
        assert!(record().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_latency() {
        let mut r = record();
        r.latency_ms = -1.0;
        assert!(r.validate().is_err());
        r.latency_ms = f64::NAN;
        assert!(r.validate().is_err());
        r.latency_ms = f64::INFINITY;
        assert!(r.validate().is_err());
        r.latency_ms = 0.0;
        assert!(r.validate().is_ok());
    }

    #[test]
    fn validation_rejects_absurd_timezone() {
        let mut r = record();
        r.tz_offset_ms = 15 * MS_PER_HOUR;
        assert!(r.validate().is_err());
        r.tz_offset_ms = -14 * MS_PER_HOUR;
        assert!(r.validate().is_ok());
    }

    #[test]
    fn convenience_accessors_respect_timezone() {
        let mut r = record();
        assert_eq!(r.hour_slot().0, 10);
        assert_eq!(r.day_period(), DayPeriod::Morning8to14);
        assert_eq!(r.month(), Month::Feb);
        // Shift the user 12 hours east: 10:00 becomes 22:00 local.
        r.tz_offset_ms = 12 * MS_PER_HOUR;
        assert_eq!(r.hour_slot().0, 22);
        assert_eq!(r.day_period(), DayPeriod::Evening20to2);
    }

    #[test]
    fn serde_roundtrip() {
        let r = record();
        let json = serde_json::to_string(&r).unwrap();
        let back: ActionRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
