//! The `.asc` binary columnar container: [`ColumnStore`]'s seven columns
//! serialized verbatim, memory-mapped straight back into a [`LogView`].
//!
//! Text codecs dominate end-to-end cost at paper scale (parsing, not
//! analysis, is the bottleneck — see BENCH_pipeline.json), so this module
//! provides a zero-parse on-disk format: the column vectors are written as
//! little-endian byte sections, and the reader maps the file and hands the
//! analysis stack borrowed column slices without materializing a single
//! row.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset 0   magic "ASENSCOL" (8 bytes)
//!        8   version u32            (currently 1)
//!       12   flags   u32            (bit 0: time column is sorted)
//!       16   seven column sections, each 8-byte aligned, zero-padded:
//!              time_ms i64·n · latency_ms f64·n · action u8·n · user u64·n
//!              · class u8·n · tz_offset_ms i64·n · outcome u8·n
//!        ·   optional shard time-range blocks, 32 bytes each:
//!              row_lo u64 · row_hi u64 · min_time_ms i64 · max_time_ms i64
//!      end-224  footer:
//!              row_count u64 · shard_count u64
//!              · 7 × (offset u64, len u64, checksum u64)   — column sections
//!              · (offset u64, len u64, checksum u64)       — shard section
//!              · footer_checksum u64 · footer magic "ASENSEND"
//! ```
//!
//! The footer is written last and carries a checksum of itself plus one per
//! section, so a truncated, torn, or bit-flipped file is detected at open —
//! every corruption maps to a typed [`TelemetryError::Container`], never a
//! panic (see `tests/container_corruption.rs`).
//!
//! ## mmap safety
//!
//! The reader maps files `PROT_READ`/`MAP_PRIVATE` via a minimal
//! `extern "C"` binding (no libc crate), falling back to an aligned
//! read-to-`Vec` copy when mapping fails. Reinterpreting the mapped bytes
//! as `&[i64]`/`&[f64]`/`&[u64]`/`&[u8]` is sound because every bit
//! pattern is a valid value of those types and section offsets are
//! validated 8-byte aligned before any cast. A concurrent writer mutating
//! the mapped file can therefore corrupt *values* but never memory safety;
//! the supported workflow makes even that unobservable — `.asc` files are
//! replaced atomically (write to a temp path, then rename), never rewritten
//! in place, so a mapped inode is immutable.

use std::io::{Read as _, Write};
use std::path::{Path, PathBuf};

use crate::error::TelemetryError;
use crate::log::{ColumnStore, LogView, TelemetryLog};
use crate::record::ActionRecord;
use crate::time::MS_PER_HOUR;

// The byte-level layout below assumes the in-memory representation of the
// column slices *is* the on-disk representation.
#[cfg(target_endian = "big")]
compile_error!("the .asc container codec assumes a little-endian target");

/// Leading file magic.
pub const CONTAINER_MAGIC: [u8; 8] = *b"ASENSCOL";
/// Trailing footer magic (last 8 bytes of a finalized file).
pub const FOOTER_MAGIC: [u8; 8] = *b"ASENSEND";
/// Current format version.
pub const CONTAINER_VERSION: u32 = 1;
/// Header flag: the time column is non-decreasing.
pub const FLAG_SORTED: u32 = 1;
/// Fixed header size: magic + version + flags.
pub const HEADER_LEN: usize = 16;
/// Size of one shard time-range block.
pub const SHARD_BLOCK_LEN: usize = 32;
/// Number of column sections (one per [`ColumnStore`] column).
pub const NUM_SECTIONS: usize = 7;
/// Per-row byte width of each column section, in section order.
pub const SECTION_WIDTHS: [usize; NUM_SECTIONS] = [8, 8, 1, 8, 1, 8, 1];
/// Column names, in section order (diagnostics only).
pub const SECTION_NAMES: [&str; NUM_SECTIONS] = [
    "time_ms",
    "latency_ms",
    "action",
    "user",
    "class",
    "tz_offset_ms",
    "outcome",
];
/// Fixed footer size.
pub const FOOTER_LEN: usize = FOOTER_CHECKSUM_OFFSET + 8 + 8;
/// Byte offset, within the footer, of each section's (offset, len,
/// checksum) triple.
pub const FOOTER_SECTIONS_OFFSET: usize = 16;
/// Byte offset, within the footer, of the shard section triple.
pub const FOOTER_SHARD_OFFSET: usize = FOOTER_SECTIONS_OFFSET + NUM_SECTIONS * 24;
/// Byte offset, within the footer, of the footer's own checksum (which
/// covers all footer bytes before this offset).
pub const FOOTER_CHECKSUM_OFFSET: usize = FOOTER_SHARD_OFFSET + 24;

/// Word-at-a-time FNV-style checksum over a byte section.
///
/// Each step `h = (h ^ word) * PRIME` is a bijection in both `h` and
/// `word` (the prime is odd), so flipping any single byte — data, padding
/// tail, or length marker — always changes the result. That determinism is
/// what lets the corruption tests assert "mutate one byte ⇒ typed error"
/// without enumerating hash collisions.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let word = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ word).wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        // Pad the tail into one final word; the top byte carries a length
        // marker so "short tail of zeros" differs from "no tail".
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        tail[7] = 0x80 | rem.len() as u8;
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    h
}

fn corrupt(reason: impl Into<String>) -> TelemetryError {
    TelemetryError::Container {
        reason: reason.into(),
    }
}

/// Marker for column scalar types whose every bit pattern is valid, making
/// byte-slice reinterpretation sound (given alignment).
trait Pod: Copy {}
impl Pod for i64 {}
impl Pod for u64 {}
impl Pod for f64 {}
impl Pod for u8 {}

/// View a column slice as raw little-endian bytes (zero-copy; see the
/// endianness guard above).
fn col_bytes<T: Pod>(col: &[T]) -> &[u8] {
    // SAFETY: T is Pod (no padding, all bit patterns valid) and u8 has
    // alignment 1, so any &[T] reinterprets as bytes.
    unsafe { std::slice::from_raw_parts(col.as_ptr() as *const u8, std::mem::size_of_val(col)) }
}

/// View a validated byte section as a column slice. Alignment and length
/// are re-checked so corruption can only ever surface as a typed error.
fn cast_section<'a, T: Pod>(bytes: &'a [u8], name: &str) -> Result<&'a [T], TelemetryError> {
    let width = std::mem::size_of::<T>();
    if !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return Err(corrupt(format!("section {name} is misaligned in memory")));
    }
    if !bytes.len().is_multiple_of(width) {
        return Err(corrupt(format!(
            "section {name} byte length {} is not a multiple of {width}",
            bytes.len()
        )));
    }
    // SAFETY: alignment and length checked; every bit pattern of T is valid.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / width) })
}

fn align8(x: u64) -> u64 {
    (x + 7) & !7
}

/// One shard time-range block: rows `[row_lo, row_hi)` all have timestamps
/// within `[min_time_ms, max_time_ms]`, letting a reader prune whole row
/// ranges by time without touching the time column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBlock {
    /// First row of the shard.
    pub row_lo: u64,
    /// One past the last row of the shard.
    pub row_hi: u64,
    /// Smallest timestamp in the shard, milliseconds.
    pub min_time_ms: i64,
    /// Largest timestamp in the shard, milliseconds.
    pub max_time_ms: i64,
}

fn compute_shard_blocks(times: &[i64], shard_ms: i64) -> Vec<ShardBlock> {
    let mut blocks = Vec::new();
    let mut lo = 0usize;
    while lo < times.len() {
        let bucket = times[lo].div_euclid(shard_ms);
        let mut hi = lo + 1;
        while hi < times.len() && times[hi].div_euclid(shard_ms) == bucket {
            hi += 1;
        }
        blocks.push(ShardBlock {
            row_lo: lo as u64,
            row_hi: hi as u64,
            min_time_ms: times[lo],
            max_time_ms: times[hi - 1],
        });
        lo = hi;
    }
    blocks
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialize a log as an `.asc` container. Shard time-range blocks are
/// written when `shard_ms` is given (requires a sorted log; the interval
/// must be positive). Returns the total bytes written.
pub fn write_container<W: Write>(
    log: &TelemetryLog,
    out: &mut W,
    shard_ms: Option<i64>,
) -> Result<u64, TelemetryError> {
    let mut span = autosens_obs::Recorder::global().root("codec.write_container");
    let cols = log.columns();
    let rows = cols.len() as u64;
    let sorted = log.is_sorted();

    let shards = match shard_ms {
        None => Vec::new(),
        Some(ms) if ms <= 0 => {
            return Err(TelemetryError::InvalidRecord(format!(
                "shard interval must be positive, got {ms} ms"
            )))
        }
        Some(ms) => {
            log.require_sorted()?;
            compute_shard_blocks(cols.times(), ms)
        }
    };

    let sections: [&[u8]; NUM_SECTIONS] = [
        col_bytes(cols.times()),
        col_bytes(cols.latencies()),
        col_bytes(cols.actions()),
        col_bytes(cols.users()),
        col_bytes(cols.classes()),
        col_bytes(cols.tz_offsets()),
        col_bytes(cols.outcomes()),
    ];
    let mut shard_bytes = Vec::with_capacity(shards.len() * SHARD_BLOCK_LEN);
    for b in &shards {
        push_u64(&mut shard_bytes, b.row_lo);
        push_u64(&mut shard_bytes, b.row_hi);
        shard_bytes.extend_from_slice(&b.min_time_ms.to_le_bytes());
        shard_bytes.extend_from_slice(&b.max_time_ms.to_le_bytes());
    }

    // Header.
    let mut flags = 0u32;
    if sorted {
        flags |= FLAG_SORTED;
    }
    out.write_all(&CONTAINER_MAGIC)?;
    out.write_all(&CONTAINER_VERSION.to_le_bytes())?;
    out.write_all(&flags.to_le_bytes())?;

    // Sections, each aligned to 8 bytes, with their footer triples.
    let mut pos = HEADER_LEN as u64;
    let mut footer = Vec::with_capacity(FOOTER_LEN);
    push_u64(&mut footer, rows);
    push_u64(&mut footer, shards.len() as u64);
    let write_section = |out: &mut W, pos: &mut u64, bytes: &[u8], footer: &mut Vec<u8>| {
        let aligned = align8(*pos);
        if aligned > *pos {
            out.write_all(&[0u8; 8][..(aligned - *pos) as usize])?;
        }
        out.write_all(bytes)?;
        push_u64(footer, aligned);
        push_u64(footer, bytes.len() as u64);
        push_u64(footer, checksum64(bytes));
        *pos = aligned + bytes.len() as u64;
        Ok::<(), TelemetryError>(())
    };
    for bytes in sections {
        write_section(out, &mut pos, bytes, &mut footer)?;
    }
    write_section(out, &mut pos, &shard_bytes, &mut footer)?;

    // Footer: self-checksummed, magic-terminated.
    debug_assert_eq!(footer.len(), FOOTER_CHECKSUM_OFFSET);
    let footer_sum = checksum64(&footer);
    push_u64(&mut footer, footer_sum);
    footer.extend_from_slice(&FOOTER_MAGIC);
    debug_assert_eq!(footer.len(), FOOTER_LEN);
    out.write_all(&footer)?;
    out.flush()?;

    let total = pos + FOOTER_LEN as u64;
    span.field("rows", rows);
    span.field("bytes", total);
    drop(span);
    autosens_obs::MetricsRegistry::global()
        .counter(autosens_obs::names::INGEST_CONTAINERS_WRITTEN_TOTAL)
        .inc();
    Ok(total)
}

/// [`write_container`] to a file path, replacing atomically: the bytes go
/// to a `.tmp` sibling which is then renamed over `path`, so a concurrent
/// reader (or an mmap of the previous version) never observes a partially
/// written container.
pub fn write_container_file(
    log: &TelemetryLog,
    path: impl AsRef<Path>,
    shard_ms: Option<i64>,
) -> Result<u64, TelemetryError> {
    let path = path.as_ref();
    let tmp = path.with_extension("asc.tmp");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
    let bytes = match write_container(log, &mut out, shard_ms) {
        Ok(b) => b,
        Err(e) => {
            drop(out);
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
    };
    drop(out);
    std::fs::rename(&tmp, path)?;
    Ok(bytes)
}

/// Whether the first bytes are the container magic (false for short reads —
/// any valid container is larger than its header).
pub fn is_container_bytes(head: &[u8]) -> bool {
    head.len() >= CONTAINER_MAGIC.len() && head[..CONTAINER_MAGIC.len()] == CONTAINER_MAGIC
}

/// Whether `path` starts with the container magic. I/O errors propagate;
/// a file shorter than the magic is simply not a container.
pub fn is_container_file(path: impl AsRef<Path>) -> std::io::Result<bool> {
    let mut head = [0u8; 8];
    let mut file = std::fs::File::open(path)?;
    let mut filled = 0usize;
    while filled < head.len() {
        match file.read(&mut head[filled..])? {
            0 => break,
            n => filled += n,
        }
    }
    Ok(is_container_bytes(&head[..filled]))
}

/// A read-only byte buffer backed by an `mmap` of the source file when the
/// platform allows it, or by an owned 8-byte-aligned copy otherwise.
pub struct Mapping {
    backing: Backing,
}

enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    Owned {
        /// `u64` storage guarantees the 8-byte alignment the column casts
        /// need; `len` is the real byte length (the tail of the last word
        /// is padding).
        words: Vec<u64>,
        len: usize,
    },
}

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Mapping {
    /// Map `path` read-only, falling back to [`Mapping::open_copied`] if
    /// mapping fails (exotic filesystems, resource limits, non-unix).
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Mapping> {
        let path = path.as_ref();
        #[cfg(unix)]
        if let Ok(m) = Mapping::map_file(path) {
            return Ok(m);
        }
        Mapping::open_copied(path)
    }

    /// Read `path` into an owned, 8-byte-aligned buffer (no mmap).
    pub fn open_copied(path: impl AsRef<Path>) -> std::io::Result<Mapping> {
        let mut file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large"))?;
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec<u64> allocation covers at least `len` bytes and
        // u8 writes need no alignment.
        let buf = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        file.read_exact(buf)?;
        Ok(Mapping {
            backing: Backing::Owned { words, len },
        })
    }

    #[cfg(unix)]
    fn map_file(path: &Path) -> std::io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large"))?;
        if len == 0 {
            return Ok(Mapping {
                backing: Backing::Owned {
                    words: Vec::new(),
                    len: 0,
                },
            });
        }
        // SAFETY: a fresh read-only private mapping of `len` bytes; the fd
        // may be closed after mmap returns (the mapping holds the pages).
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Mapping {
            backing: Backing::Mapped { ptr, len },
        })
    }

    /// The mapped or copied bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // SAFETY: ptr/len came from a successful mmap that lives as
            // long as self; the mapping is read-only.
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            // SAFETY: the Vec<u64> allocation covers `len` bytes.
            Backing::Owned { words, len } => unsafe {
                std::slice::from_raw_parts(words.as_ptr() as *const u8, *len)
            },
        }
    }

    /// Whether the buffer is an actual memory mapping (vs. an owned copy).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Owned { .. } => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = &self.backing {
            // SAFETY: exactly the region mmap returned; unmap errors are
            // unactionable in drop.
            unsafe {
                sys::munmap(*ptr, *len);
            }
        }
    }
}

// SAFETY: the mapping is read-only for its whole lifetime, so sharing the
// raw pointer across threads is sound.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
}

fn read_i64(bytes: &[u8], off: usize) -> i64 {
    i64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
}

/// Raw footer fields, structurally decoded but not yet bounds-checked.
struct RawFooter {
    rows: u64,
    shard_count: u64,
    /// (offset, len, checksum) per column section, then the shard section.
    sections: [(u64, u64, u64); NUM_SECTIONS + 1],
}

/// Decode and self-validate the footer (magic + checksum). `footer` must
/// be exactly [`FOOTER_LEN`] bytes.
fn parse_footer(footer: &[u8]) -> Result<RawFooter, TelemetryError> {
    debug_assert_eq!(footer.len(), FOOTER_LEN);
    if footer[FOOTER_CHECKSUM_OFFSET + 8..] != FOOTER_MAGIC {
        return Err(corrupt(
            "footer magic missing — file truncated or not finalized",
        ));
    }
    let stored = read_u64(footer, FOOTER_CHECKSUM_OFFSET);
    let actual = checksum64(&footer[..FOOTER_CHECKSUM_OFFSET]);
    if stored != actual {
        return Err(corrupt(format!(
            "footer checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    let mut sections = [(0u64, 0u64, 0u64); NUM_SECTIONS + 1];
    for (i, s) in sections.iter_mut().enumerate() {
        let base = FOOTER_SECTIONS_OFFSET + i * 24;
        *s = (
            read_u64(footer, base),
            read_u64(footer, base + 8),
            read_u64(footer, base + 16),
        );
    }
    Ok(RawFooter {
        rows: read_u64(footer, 0),
        shard_count: read_u64(footer, 8),
        sections,
    })
}

/// Validate the 16-byte header (magic, version, flags); returns the flags.
fn parse_header(head: &[u8]) -> Result<u32, TelemetryError> {
    if head[..8] != CONTAINER_MAGIC {
        return Err(corrupt(format!(
            "bad magic {:?} (expected {:?})",
            &head[..8],
            CONTAINER_MAGIC
        )));
    }
    let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
    if version != CONTAINER_VERSION {
        return Err(corrupt(format!(
            "unsupported container version {version} (expected {CONTAINER_VERSION})"
        )));
    }
    let flags = u32::from_le_bytes(head[12..16].try_into().expect("4 bytes"));
    if flags & !FLAG_SORTED != 0 {
        return Err(corrupt(format!("unknown flag bits {flags:#010x}")));
    }
    Ok(flags)
}

/// Byte range of section `i` (named `name`, `width` bytes per row), after
/// checking the footer triple against the file geometry.
fn section_range(
    bytes: &[u8],
    name: &str,
    triple: (u64, u64, u64),
    rows: u64,
    width: usize,
) -> Result<std::ops::Range<usize>, TelemetryError> {
    let (off, len, _) = triple;
    let expected = rows.checked_mul(width as u64).ok_or_else(|| {
        corrupt(format!(
            "row count {rows} overflows the {name} section length"
        ))
    })?;
    if len != expected {
        return Err(corrupt(format!(
            "section {name} length mismatch: expected {expected} bytes for {rows} rows, got {len}"
        )));
    }
    if off < HEADER_LEN as u64 || off % 8 != 0 {
        return Err(corrupt(format!(
            "section {name} offset {off} is misaligned or overlaps the header"
        )));
    }
    let data_end = (bytes.len() - FOOTER_LEN) as u64;
    let end = off
        .checked_add(len)
        .filter(|&e| e <= data_end)
        .ok_or_else(|| {
            corrupt(format!(
            "section {name} (offset {off}, {len} bytes) runs past the data area ({data_end} bytes)"
        ))
        })?;
    Ok(off as usize..end as usize)
}

/// A validated, memory-mapped (or copied) `.asc` container, ready to serve
/// zero-copy [`LogView`]s of its columns.
#[derive(Debug)]
pub struct MappedLog {
    mapping: Mapping,
    rows: usize,
    sorted: bool,
    sections: [std::ops::Range<usize>; NUM_SECTIONS],
    shards: Vec<ShardBlock>,
}

impl MappedLog {
    /// Open and fully validate a container, preferring mmap. All structural
    /// checks (magic, version, footer, section geometry, checksums) and
    /// semantic checks (enum codes, latency/timezone ranges, sorted flag)
    /// run here, so every later access is infallible.
    pub fn open(path: impl AsRef<Path>) -> Result<MappedLog, TelemetryError> {
        MappedLog::from_mapping(Mapping::open(path)?)
    }

    /// [`MappedLog::open`] forced onto the read-to-`Vec` fallback path.
    pub fn open_copied(path: impl AsRef<Path>) -> Result<MappedLog, TelemetryError> {
        MappedLog::from_mapping(Mapping::open_copied(path)?)
    }

    fn from_mapping(mapping: Mapping) -> Result<MappedLog, TelemetryError> {
        let mut span = autosens_obs::Recorder::global().root("codec.read_container");
        let bytes = mapping.bytes();
        if bytes.len() < HEADER_LEN + FOOTER_LEN {
            return Err(corrupt(format!(
                "container truncated: {} bytes is below the {}-byte minimum",
                bytes.len(),
                HEADER_LEN + FOOTER_LEN
            )));
        }
        let flags = parse_header(&bytes[..HEADER_LEN])?;
        let sorted = flags & FLAG_SORTED != 0;
        let footer = parse_footer(&bytes[bytes.len() - FOOTER_LEN..])?;

        let rows = usize::try_from(footer.rows)
            .map_err(|_| corrupt(format!("row count {} does not fit in memory", footer.rows)))?;
        let mut sections: [std::ops::Range<usize>; NUM_SECTIONS] = Default::default();
        for i in 0..NUM_SECTIONS {
            let range = section_range(
                bytes,
                SECTION_NAMES[i],
                footer.sections[i],
                footer.rows,
                SECTION_WIDTHS[i],
            )?;
            let actual = checksum64(&bytes[range.clone()]);
            if actual != footer.sections[i].2 {
                return Err(corrupt(format!(
                    "section {} checksum mismatch: stored {:#018x}, computed {actual:#018x}",
                    SECTION_NAMES[i], footer.sections[i].2
                )));
            }
            sections[i] = range;
        }
        let shard_range = section_range(
            bytes,
            "shards",
            footer.sections[NUM_SECTIONS],
            footer.shard_count,
            SHARD_BLOCK_LEN,
        )?;
        let shard_sum = checksum64(&bytes[shard_range.clone()]);
        if shard_sum != footer.sections[NUM_SECTIONS].2 {
            return Err(corrupt(format!(
                "shard section checksum mismatch: stored {:#018x}, computed {shard_sum:#018x}",
                footer.sections[NUM_SECTIONS].2
            )));
        }

        let log = MappedLog {
            rows,
            sorted,
            sections,
            shards: Vec::new(),
            mapping,
        };
        log.validate_columns()?;
        let shards = log.parse_shards(shard_range)?;
        let log = MappedLog { shards, ..log };

        span.field("rows", rows);
        span.field("bytes", log.mapping.bytes().len());
        span.field("mapped", u64::from(log.mapping.is_mapped()));
        drop(span);
        let metrics = autosens_obs::MetricsRegistry::global();
        metrics
            .counter(autosens_obs::names::INGEST_ROWS_TOTAL)
            .add(rows as u64);
        metrics
            .counter(autosens_obs::names::INGEST_BYTES_TOTAL)
            .add(log.mapping.bytes().len() as u64);
        metrics
            .counter(autosens_obs::names::INGEST_CONTAINERS_TOTAL)
            .inc();
        Ok(log)
    }

    /// Semantic column validation: the same invariants
    /// [`ActionRecord::validate`] enforces at the text-codec boundary, plus
    /// enum-code ranges (an out-of-range code would panic in `from_code`)
    /// and the sorted flag's claim about the time column.
    fn validate_columns(&self) -> Result<(), TelemetryError> {
        let (times, latencies, actions, _, classes, tzs, outcomes) = self.columns()?;
        for (i, &l) in latencies.iter().enumerate() {
            if !l.is_finite() || l < 0.0 {
                return Err(corrupt(format!(
                    "latency column row {i}: must be finite and >= 0, got {l}"
                )));
            }
        }
        let enum_cols: [(&str, &[u8], u8); 3] = [
            ("action", actions, 4),
            ("class", classes, 1),
            ("outcome", outcomes, 1),
        ];
        for (name, col, max) in enum_cols {
            if let Some(i) = col.iter().position(|&c| c > max) {
                return Err(corrupt(format!(
                    "{name} column row {i} holds invalid code {} (max {max})",
                    col[i]
                )));
            }
        }
        let fourteen_hours = 14 * MS_PER_HOUR;
        if let Some(i) = tzs.iter().position(|&t| t.abs() > fourteen_hours) {
            return Err(corrupt(format!(
                "tz_offset column row {i} is outside +/-14h: {} ms",
                tzs[i]
            )));
        }
        if self.sorted {
            if let Some(i) = (1..times.len()).find(|&i| times[i] < times[i - 1]) {
                return Err(corrupt(format!(
                    "sorted flag set but the time column decreases at row {i}"
                )));
            }
        }
        Ok(())
    }

    fn parse_shards(
        &self,
        range: std::ops::Range<usize>,
    ) -> Result<Vec<ShardBlock>, TelemetryError> {
        let bytes = &self.mapping.bytes()[range];
        let mut shards = Vec::with_capacity(bytes.len() / SHARD_BLOCK_LEN);
        let mut prev_hi = 0u64;
        for (i, block) in bytes.chunks_exact(SHARD_BLOCK_LEN).enumerate() {
            let b = ShardBlock {
                row_lo: read_u64(block, 0),
                row_hi: read_u64(block, 8),
                min_time_ms: read_i64(block, 16),
                max_time_ms: read_i64(block, 24),
            };
            if b.row_lo < prev_hi || b.row_lo >= b.row_hi || b.row_hi > self.rows as u64 {
                return Err(corrupt(format!(
                    "shard block {i} rows [{}, {}) out of order or out of range (rows {}, previous end {prev_hi})",
                    b.row_lo, b.row_hi, self.rows
                )));
            }
            if b.min_time_ms > b.max_time_ms {
                return Err(corrupt(format!(
                    "shard block {i} time range inverted: [{}, {}]",
                    b.min_time_ms, b.max_time_ms
                )));
            }
            prev_hi = b.row_hi;
            shards.push(b);
        }
        Ok(shards)
    }

    #[allow(clippy::type_complexity)]
    fn columns(
        &self,
    ) -> Result<(&[i64], &[f64], &[u8], &[u64], &[u8], &[i64], &[u8]), TelemetryError> {
        let bytes = self.mapping.bytes();
        Ok((
            cast_section(&bytes[self.sections[0].clone()], SECTION_NAMES[0])?,
            cast_section(&bytes[self.sections[1].clone()], SECTION_NAMES[1])?,
            cast_section(&bytes[self.sections[2].clone()], SECTION_NAMES[2])?,
            cast_section(&bytes[self.sections[3].clone()], SECTION_NAMES[3])?,
            cast_section(&bytes[self.sections[4].clone()], SECTION_NAMES[4])?,
            cast_section(&bytes[self.sections[5].clone()], SECTION_NAMES[5])?,
            cast_section(&bytes[self.sections[6].clone()], SECTION_NAMES[6])?,
        ))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the container holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Whether the time column is sorted (validated at open).
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Whether the bytes are served by an actual memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.mapping.is_mapped()
    }

    /// The shard time-range blocks (empty if the writer omitted them).
    pub fn shard_blocks(&self) -> &[ShardBlock] {
        &self.shards
    }

    /// The zero-copy view over the mapped columns — the zero-parse ingest
    /// path. Building it is O(1); no row is materialized.
    pub fn view(&self) -> LogView<'_> {
        let (times, latencies, actions, users, classes, tzs, outcomes) =
            self.columns().expect("sections validated at open");
        LogView::from_columns(
            times,
            latencies,
            actions,
            users,
            classes,
            tzs,
            outcomes,
            self.sorted,
        )
        .expect("equal column lengths validated at open")
    }

    /// Copy the columns into an owned [`TelemetryLog`] (for callers that
    /// need ownership or mutation; analysis should prefer [`Self::view`]).
    pub fn to_log(&self) -> Result<TelemetryLog, TelemetryError> {
        let (times, latencies, actions, users, classes, tzs, outcomes) = self.columns()?;
        let cols = ColumnStore::from_vecs(
            times.to_vec(),
            latencies.to_vec(),
            actions.to_vec(),
            users.to_vec(),
            classes.to_vec(),
            tzs.to_vec(),
            outcomes.to_vec(),
        )?;
        Ok(TelemetryLog::from_columns(cols))
    }
}

/// Read just enough of a container to learn its row count: header, then
/// the trailing footer (self-validated). Much cheaper than a full open —
/// no section checksums are verified — so suitable for polling a growing
/// source or pre-checking a checkpoint offset.
pub fn peek_row_count(path: impl AsRef<Path>) -> Result<u64, TelemetryError> {
    use std::io::{Seek, SeekFrom};
    let mut file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    if len < (HEADER_LEN + FOOTER_LEN) as u64 {
        return Err(corrupt(format!(
            "container truncated: {len} bytes is below the {}-byte minimum",
            HEADER_LEN + FOOTER_LEN
        )));
    }
    let mut head = [0u8; HEADER_LEN];
    file.read_exact(&mut head)?;
    parse_header(&head)?;
    let mut footer = [0u8; FOOTER_LEN];
    file.seek(SeekFrom::Start(len - FOOTER_LEN as u64))?;
    file.read_exact(&mut footer)?;
    Ok(parse_footer(&footer)?.rows)
}

/// An append-aware reader for a *growing* `.asc` source — the binary
/// counterpart of [`crate::codec::TailReader`], with **row** offsets where
/// the text tailer uses byte offsets. Growth means atomic replacement
/// (tmp + rename, as [`write_container_file`] does) with the previous rows
/// a prefix of the new ones; each poll returns the rows appended since the
/// last, materialized in row order.
///
/// The reader holds no mapping between polls, only the row count consumed
/// so far, which [`ContainerTailReader::offset`] exposes for checkpointing
/// (always row-aligned — the format has no notion of a partial row).
#[derive(Debug)]
pub struct ContainerTailReader {
    path: PathBuf,
    rows_seen: u64,
}

impl ContainerTailReader {
    /// Tail a container from its first row.
    pub fn new(path: impl Into<PathBuf>) -> ContainerTailReader {
        ContainerTailReader {
            path: path.into(),
            rows_seen: 0,
        }
    }

    /// Resume tailing at a checkpointed row offset (previously returned by
    /// [`ContainerTailReader::offset`]).
    pub fn resume(path: impl Into<PathBuf>, rows: u64) -> ContainerTailReader {
        ContainerTailReader {
            path: path.into(),
            rows_seen: rows,
        }
    }

    /// Rows consumed so far — the checkpoint coordinate.
    pub fn offset(&self) -> u64 {
        self.rows_seen
    }

    /// Return every row appended since the last poll (empty when the
    /// source has not grown). A source whose row count shrank below the
    /// consumed offset was truncated or replaced mid-stream — a hard
    /// error, matching the text tailer's contract.
    pub fn poll(&mut self) -> Result<Vec<ActionRecord>, TelemetryError> {
        autosens_obs::MetricsRegistry::global()
            .counter(autosens_obs::names::INGEST_TAIL_POLLS_TOTAL)
            .inc();
        let shrank = |rows: u64, seen: u64| {
            corrupt(format!(
                "container shrank to {rows} rows below checkpoint offset {seen} — \
                 truncated or replaced mid-stream"
            ))
        };
        // Footer-only peek first: the common "no growth" poll skips the
        // full checksum validation of an open.
        let rows_now = peek_row_count(&self.path)?;
        if rows_now < self.rows_seen {
            return Err(shrank(rows_now, self.rows_seen));
        }
        if rows_now == self.rows_seen {
            return Ok(Vec::new());
        }
        let log = MappedLog::open(&self.path)?;
        // The file may have been replaced between the peek and the open.
        if (log.len() as u64) < self.rows_seen {
            return Err(shrank(log.len() as u64, self.rows_seen));
        }
        let view = log.view();
        let batch: Vec<ActionRecord> = (self.rows_seen as usize..log.len())
            .map(|i| view.get(i))
            .collect();
        self.rows_seen = log.len() as u64;
        autosens_obs::MetricsRegistry::global()
            .counter("autosens_telemetry_records_read_total")
            .add(batch.len() as u64);
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ActionType, Outcome, UserClass, UserId};
    use crate::time::SimTime;

    fn rec(t_ms: i64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t_ms),
            action: ActionType::Search,
            latency_ms: latency,
            user: UserId(42),
            class: UserClass::Consumer,
            tz_offset_ms: -18_000_000,
            outcome: Outcome::Success,
        }
    }

    fn sample_log(n: i64) -> TelemetryLog {
        TelemetryLog::from_records(
            (0..n)
                .map(|i| {
                    let mut r = rec(i * 1000, (i % 17) as f64 + 0.5);
                    r.user = UserId(i as u64 % 5);
                    if i % 3 == 0 {
                        r.action = ActionType::SelectMail;
                        r.class = UserClass::Business;
                    }
                    if i % 11 == 0 {
                        r.outcome = Outcome::Error;
                    }
                    r
                })
                .collect(),
        )
        .unwrap()
    }

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("autosens-container-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_mapped_and_copied() {
        let log = sample_log(500);
        let path = tmp_path("roundtrip.asc");
        write_container_file(&log, &path, Some(10_000)).unwrap();
        for mapped in [
            MappedLog::open(&path).unwrap(),
            MappedLog::open_copied(&path).unwrap(),
        ] {
            assert_eq!(mapped.len(), 500);
            assert!(mapped.is_sorted());
            assert_eq!(mapped.to_log().unwrap().columns(), log.columns());
            let view = mapped.view();
            assert_eq!(view.len(), log.len());
            assert_eq!(view.get(123), log.get(123));
        }
        assert!(MappedLog::open_copied(&path).unwrap().len() == 500);
        assert!(!MappedLog::open_copied(&path).unwrap().is_mapped());
    }

    #[test]
    fn empty_log_roundtrips() {
        let path = tmp_path("empty.asc");
        write_container_file(&TelemetryLog::new(), &path, None).unwrap();
        let mapped = MappedLog::open(&path).unwrap();
        assert!(mapped.is_empty());
        assert!(mapped.shard_blocks().is_empty());
        assert_eq!(mapped.view().len(), 0);
        assert_eq!(peek_row_count(&path).unwrap(), 0);
    }

    #[test]
    fn shard_blocks_partition_rows_by_time_bucket() {
        let log = sample_log(100); // times 0..100_000 ms
        let path = tmp_path("shards.asc");
        write_container_file(&log, &path, Some(25_000)).unwrap();
        let mapped = MappedLog::open(&path).unwrap();
        let blocks = mapped.shard_blocks();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].row_lo, 0);
        assert_eq!(blocks.last().unwrap().row_hi, 100);
        for w in blocks.windows(2) {
            assert_eq!(w[0].row_hi, w[1].row_lo);
            assert!(w[0].max_time_ms < w[1].min_time_ms);
        }
        for b in blocks {
            assert_eq!(b.min_time_ms, log.columns().times()[b.row_lo as usize]);
            assert_eq!(b.max_time_ms, log.columns().times()[b.row_hi as usize - 1]);
        }
        // Bad shard interval is a typed error.
        let mut sink = Vec::new();
        assert!(write_container(&log, &mut sink, Some(0)).is_err());
    }

    #[test]
    fn detection_by_magic() {
        let path = tmp_path("detect.asc");
        write_container_file(&sample_log(3), &path, None).unwrap();
        assert!(is_container_file(&path).unwrap());
        let text = tmp_path("detect.csv");
        std::fs::write(&text, "time_ms,action\n").unwrap();
        assert!(!is_container_file(&text).unwrap());
        let short = tmp_path("short.bin");
        std::fs::write(&short, b"AS").unwrap();
        assert!(!is_container_file(&short).unwrap());
        assert!(is_container_file(tmp_path("missing.asc")).is_err());
    }

    #[test]
    fn peek_matches_full_open() {
        let path = tmp_path("peek.asc");
        write_container_file(&sample_log(77), &path, None).unwrap();
        assert_eq!(peek_row_count(&path).unwrap(), 77);
    }

    #[test]
    fn tail_reader_follows_growth_row_aligned() {
        let path = tmp_path("tail.asc");
        let full = sample_log(60);
        let half = TelemetryLog::from_records(full.to_records()[..25].to_vec()).unwrap();
        write_container_file(&half, &path, None).unwrap();
        let mut tail = ContainerTailReader::new(&path);
        let batch = tail.poll().unwrap();
        assert_eq!(batch.len(), 25);
        assert_eq!(tail.offset(), 25);
        assert!(tail.poll().unwrap().is_empty());

        // Grow the source (atomic replace) and poll the delta.
        write_container_file(&full, &path, None).unwrap();
        let batch = tail.poll().unwrap();
        assert_eq!(batch.len(), 35);
        assert_eq!(batch, full.to_records()[25..].to_vec());
        assert_eq!(tail.offset(), 60);

        // Resume from a checkpointed row offset.
        let mut resumed = ContainerTailReader::resume(&path, 25);
        assert_eq!(resumed.poll().unwrap().len(), 35);

        // A shrunken source is a hard error.
        write_container_file(&half, &path, None).unwrap();
        let err = ContainerTailReader::resume(&path, 60).poll().unwrap_err();
        assert!(matches!(err, TelemetryError::Container { .. }));
        assert!(err.to_string().contains("shrank"));
    }

    #[test]
    fn checksum_detects_single_byte_flips() {
        let data: Vec<u8> = (0..100u8).collect();
        let base = checksum64(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 0x01;
            assert_ne!(checksum64(&flipped), base, "flip at byte {i} undetected");
        }
        assert_ne!(checksum64(&data[..99]), base);
        assert_ne!(checksum64(b""), checksum64(&[0u8]));
        assert_ne!(checksum64(&[0u8]), checksum64(&[0u8, 0u8]));
    }

    #[test]
    fn unsorted_log_writes_unsorted_container() {
        let mut log = TelemetryLog::new();
        log.push(rec(2000, 1.0)).unwrap();
        log.push(rec(1000, 2.0)).unwrap();
        assert!(!log.is_sorted());
        // Shard blocks require a sorted log.
        let mut sink = Vec::new();
        assert!(matches!(
            write_container(&log, &mut sink, Some(1000)),
            Err(TelemetryError::Unsorted { .. })
        ));
        let path = tmp_path("unsorted.asc");
        write_container_file(&log, &path, None).unwrap();
        let mapped = MappedLog::open(&path).unwrap();
        assert!(!mapped.is_sorted());
        assert_eq!(mapped.view().time_at(0), 2000);
        // Materializing restores the log invariant (sorts).
        let back = mapped.to_log().unwrap();
        assert!(back.is_sorted());
        assert_eq!(back.columns().times(), &[1000, 2000]);
    }
}
