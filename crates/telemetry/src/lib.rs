//! Telemetry substrate for the AutoSens reproduction.
//!
//! AutoSens consumes minimal server-side telemetry: one record per user
//! action, carrying the start timestamp, the action type, the client-measured
//! end-to-end latency, an anonymized user id, and coarse user metadata
//! (paper §2.1). This crate provides that data model plus the machinery the
//! analyses need around it:
//!
//! * [`time`] — millisecond timestamps, hour slots, the paper's four 6-hour
//!   day periods, and months, including per-user local-time handling.
//! * [`record`] — [`record::ActionRecord`] and its enums.
//! * [`log`] — [`log::TelemetryLog`], a time-sorted columnar store with
//!   binary search, plus [`log::LogView`], the zero-copy selection the
//!   analysis stack computes over.
//! * [`query`] — composable record filters for the paper's analysis slices.
//! * [`users`] — per-user aggregates and the §3.4 median-latency quartiles.
//! * [`codec`] — CSV and JSONL import/export with strict validation.
//! * [`container`] — the `.asc` binary columnar container: checksummed
//!   on-disk serialization of the column store, memory-mapped back into a
//!   [`log::LogView`] with zero parsing.
//! * [`quality`] — data-quality auditing (loss, duplicates, heaping, nulls).
//! * [`loss`] — per-slot/per-class loss evidence (volume + sequence gaps),
//!   the substrate of loss-aware correction in the analysis pipeline.

pub mod codec;
pub mod container;
pub mod error;
pub mod log;
pub mod loss;
pub mod quality;
pub mod query;
pub mod record;
pub mod time;
pub mod users;

pub use codec::{TailFormat, TailReader};
pub use container::{ContainerTailReader, MappedLog};
pub use error::TelemetryError;
pub use log::{ColumnStore, LogView, TelemetryLog};
pub use record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
pub use time::SimTime;
