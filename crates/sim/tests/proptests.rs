//! Property-based tests for the simulator: configuration validation,
//! determinism under arbitrary (small) scenarios, and invariants of the
//! planted preference curves.

use autosens_sim::config::{CongestionConfig, Scenario, SimConfig};
use autosens_sim::congestion::CongestionSeries;
use autosens_sim::generate;
use autosens_sim::preference::{base_curve, conditioning_exponent, PrefCurve, SensingMode};
use autosens_telemetry::record::{ActionType, UserClass};
use proptest::prelude::*;

/// An arbitrary tiny-but-valid scenario (fast enough for many cases).
fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        any::<u64>(),
        1u32..3,      // days
        1u32..30,     // business users
        0u32..30,     // consumer users
        0.5f64..4.0,  // rate
        0.0f64..0.6,  // activity sigma
        0.0f64..0.4,  // network sigma
        0.0f64..0.3,  // noise sigma
        0.0f64..0.05, // error rate
        prop_oneof![
            Just(SensingMode::Oracle),
            Just(SensingMode::Level),
            (0.5f64..0.99).prop_map(|beta| SensingMode::Ema { beta }),
        ],
    )
        .prop_map(
            |(seed, days, nb, nc, rate, act, net, noise, err, sensing)| SimConfig {
                seed,
                days,
                n_business: nb.max(1),
                n_consumer: nc,
                mean_actions_per_active_hour: rate,
                activity_sigma: act,
                network_sigma: net,
                latency_noise_sigma: noise,
                error_rate: err,
                sensing,
                ..SimConfig::scenario(Scenario::Smoke)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_deterministic_for_any_config(cfg in arb_config()) {
        let (a, _) = generate(&cfg).unwrap();
        let (b, _) = generate(&cfg).unwrap();
        prop_assert_eq!(a.to_records(), b.to_records());
    }

    #[test]
    fn generated_records_satisfy_all_invariants(cfg in arb_config()) {
        let (log, _) = generate(&cfg).unwrap();
        prop_assert!(log.is_sorted());
        let end_ms = cfg.days as i64 * 86_400_000;
        for r in log.iter() {
            prop_assert!(r.time.millis() >= 0 && r.time.millis() < end_ms);
            prop_assert!(r.latency_ms.is_finite() && r.latency_ms > 0.0);
            prop_assert!((r.user.0 as u32) < cfg.n_users());
            // Class is consistent with the id partition.
            let expect = if (r.user.0 as u32) < cfg.n_business {
                UserClass::Business
            } else {
                UserClass::Consumer
            };
            prop_assert_eq!(r.class, expect);
            prop_assert!(r.validate().is_ok());
        }
    }

    #[test]
    fn error_rate_zero_means_no_errors(mut cfg in arb_config()) {
        cfg.error_rate = 0.0;
        let (log, _) = generate(&cfg).unwrap();
        prop_assert_eq!(log.successes_only().len(), log.len());
    }
}

proptest! {
    // ---------- preference curves (cheap, default case count) ----------

    #[test]
    fn pref_curves_are_valid_probabilities_and_decreasing(
        floor in 0.0f64..1.0,
        amp in 0.0f64..1.0,
        tau in 50.0f64..5000.0,
        l1 in 0.0f64..5000.0,
        l2 in 0.0f64..5000.0,
    ) {
        let c = PrefCurve { floor, amp, tau_ms: tau };
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let p_lo = c.eval(lo);
        let p_hi = c.eval(hi);
        prop_assert!(p_lo > 0.0 && p_lo <= 1.0);
        prop_assert!(p_hi > 0.0 && p_hi <= 1.0);
        prop_assert!(p_hi <= p_lo + 1e-12, "curve must be non-increasing");
    }

    #[test]
    fn normalized_pref_is_one_at_reference(
        l_ref in 1.0f64..3000.0,
        gamma in 0.1f64..3.0,
    ) {
        for action in ActionType::analyzed() {
            for class in UserClass::all() {
                let c = base_curve(action, class);
                let v = c.normalized(l_ref, l_ref, gamma);
                prop_assert!((v - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn conditioning_exponent_is_clamped_and_monotone(
        net1 in 0.01f64..100.0,
        net2 in 0.01f64..100.0,
        strength in 0.0f64..5.0,
    ) {
        let g1 = conditioning_exponent(net1, strength);
        let g2 = conditioning_exponent(net2, strength);
        prop_assert!((0.5..=2.0).contains(&g1));
        prop_assert!((0.5..=2.0).contains(&g2));
        // Faster users (smaller factor) never get a smaller exponent.
        if net1 < net2 {
            prop_assert!(g1 >= g2 - 1e-12);
        }
    }

    #[test]
    fn congestion_series_is_positive_and_deterministic(
        seed in any::<u64>(),
        minutes in 10usize..2000,
        sigma in 0.0f64..1.0,
        rho in 0.0f64..0.999,
    ) {
        let cfg = CongestionConfig { sigma, rho, ..CongestionConfig::default() };
        let a = CongestionSeries::generate(&cfg, minutes, seed);
        let b = CongestionSeries::generate(&cfg, minutes, seed);
        prop_assert_eq!(a.multipliers(), b.multipliers());
        prop_assert_eq!(a.len(), minutes);
        for &m in a.multipliers() {
            prop_assert!(m.is_finite() && m > 0.0);
        }
    }
}
