//! Exported ground truth for validating the inference pipeline.
//!
//! Because the simulator *plants* the latency preference, the reproduction
//! can do something the paper could not: check the inferred normalized
//! preference against the truth. [`GroundTruth`] bundles everything the
//! validation needs — the population, the congestion series, and the
//! configuration — and derives:
//!
//! * the planted normalized preference for an analysis slice (an
//!   activity-weighted blend of the per-user curves),
//! * the true time-based activity factor `α` per day period,
//! * unbiased "probe" latency samples drawn at uniformly random times
//!   (the quantity the paper's `U` estimator approximates).

use rand::Rng;

use autosens_telemetry::record::{ActionType, UserClass};
use autosens_telemetry::time::{DayPeriod, MS_PER_MIN};

use crate::config::SimConfig;
use crate::congestion::CongestionSeries;
use crate::diurnal::{activity_level, true_alpha};
use crate::latency::LatencyModel;
use crate::population::UserProfile;
use crate::preference::{base_curve, period_exponent};

/// The complete ground truth of one simulation run.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    config: SimConfig,
    population: Vec<UserProfile>,
    congestion: CongestionSeries,
}

impl GroundTruth {
    /// Bundle the realized ground truth (called by the engine).
    pub fn new(
        config: SimConfig,
        population: Vec<UserProfile>,
        congestion: CongestionSeries,
    ) -> Self {
        GroundTruth {
            config,
            population,
            congestion,
        }
    }

    /// The configuration that produced this run.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The sampled user population.
    pub fn population(&self) -> &[UserProfile] {
        &self.population
    }

    /// The realized congestion series.
    pub fn congestion(&self) -> &CongestionSeries {
        &self.congestion
    }

    /// The planted *normalized* preference at `latency_ms` (relative to
    /// `reference_ms`) for an (action, class) slice, pooled over all hours.
    ///
    /// Pooling uses the same weights the data itself carries: each user
    /// contributes proportionally to their activity rate, and each day
    /// period proportionally to its activity level, because that is how many
    /// actions each (user, period) cell contributes to `B`. The blended
    /// truth is `Σ w_i p(L)^γ_i / Σ w_i`, normalized at the reference.
    pub fn normalized_preference(
        &self,
        action: ActionType,
        class: UserClass,
        latency_ms: f64,
        reference_ms: f64,
    ) -> f64 {
        let raw = |l: f64| self.pooled_raw_preference(action, class, l, None, None);
        raw(latency_ms) / raw(reference_ms)
    }

    /// Planted normalized preference restricted to one day period (Fig 7).
    pub fn normalized_preference_in_period(
        &self,
        action: ActionType,
        class: UserClass,
        latency_ms: f64,
        reference_ms: f64,
        period: DayPeriod,
    ) -> f64 {
        let raw = |l: f64| self.pooled_raw_preference(action, class, l, Some(period), None);
        raw(latency_ms) / raw(reference_ms)
    }

    /// Planted normalized preference restricted to a user subset (Fig 6),
    /// identified by a predicate over profiles.
    pub fn normalized_preference_for_users(
        &self,
        action: ActionType,
        class: UserClass,
        latency_ms: f64,
        reference_ms: f64,
        keep: &dyn Fn(&UserProfile) -> bool,
    ) -> f64 {
        let raw = |l: f64| self.pooled_raw_preference(action, class, l, None, Some(keep));
        raw(latency_ms) / raw(reference_ms)
    }

    fn pooled_raw_preference(
        &self,
        action: ActionType,
        class: UserClass,
        latency_ms: f64,
        period: Option<DayPeriod>,
        keep: Option<&dyn Fn(&UserProfile) -> bool>,
    ) -> f64 {
        let curve = base_curve(action, class);
        let periods: &[DayPeriod] = match &period {
            Some(p) => std::slice::from_ref(p),
            None => &[
                DayPeriod::Morning8to14,
                DayPeriod::Afternoon14to20,
                DayPeriod::Evening20to2,
                DayPeriod::Night2to8,
            ],
        };
        let mut num = 0.0;
        let mut den = 0.0;
        for user in self.population.iter().filter(|u| u.class == class) {
            if let Some(keep) = keep {
                if !keep(user) {
                    continue;
                }
            }
            for &p in periods {
                let w = user.rate_per_active_hour * period_activity(class, p);
                let gamma =
                    user.conditioning_gamma * period_exponent(&self.config.period_exponents, p);
                num += w * curve.eval(latency_ms).powf(gamma);
                den += w;
            }
        }
        if den == 0.0 {
            return f64::NAN;
        }
        num / den
    }

    /// The ground-truth activity factor for a day period relative to the
    /// 8am–2pm reference (Figure 8's expected level).
    pub fn true_alpha(&self, class: UserClass, period: DayPeriod) -> f64 {
        true_alpha(class, period)
    }

    /// Draw `n` unbiased probe latencies for an (action, class) slice:
    /// uniformly random times over the simulated span, a random user of the
    /// class, and a fresh latency draw — the true underlying `U`.
    pub fn sample_unbiased_probes<R: Rng>(
        &self,
        action: ActionType,
        class: UserClass,
        n: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        let users: Vec<&UserProfile> = self
            .population
            .iter()
            .filter(|u| u.class == class)
            .collect();
        assert!(!users.is_empty(), "no users of class {class:?}");
        let model = LatencyModel::new(&self.congestion, self.config.latency_noise_sigma);
        let span_ms = self.config.n_minutes() as i64 * MS_PER_MIN;
        (0..n)
            .map(|_| {
                let t = rng.gen_range(0..span_ms);
                let u = users[rng.gen_range(0..users.len())];
                model.sample_ms(u, action, t, rng)
            })
            .collect()
    }
}

/// Activity level of a class averaged over a period (weekday profile).
fn period_activity(class: UserClass, period: DayPeriod) -> f64 {
    let hours: [u8; 6] = match period {
        DayPeriod::Morning8to14 => [8, 9, 10, 11, 12, 13],
        DayPeriod::Afternoon14to20 => [14, 15, 16, 17, 18, 19],
        DayPeriod::Evening20to2 => [20, 21, 22, 23, 0, 1],
        DayPeriod::Night2to8 => [2, 3, 4, 5, 6, 7],
    };
    hours
        .iter()
        .map(|&h| activity_level(class, h, false))
        .sum::<f64>()
        / 6.0
}

/// A convenience for tests: evaluate the truth on a latency grid.
pub fn truth_series(
    truth: &GroundTruth,
    action: ActionType,
    class: UserClass,
    latencies: &[f64],
    reference_ms: f64,
) -> Vec<f64> {
    latencies
        .iter()
        .map(|&l| truth.normalized_preference(action, class, l, reference_ms))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scenario;
    use crate::engine::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth() -> GroundTruth {
        let cfg = SimConfig::scenario(Scenario::Smoke);
        generate(&cfg).unwrap().1
    }

    #[test]
    fn normalized_preference_is_one_at_reference_and_monotone() {
        let t = truth();
        let v300 =
            t.normalized_preference(ActionType::SelectMail, UserClass::Business, 300.0, 300.0);
        assert!((v300 - 1.0).abs() < 1e-12);
        let mut prev = f64::INFINITY;
        for l in (100..2500).step_by(100) {
            let v = t.normalized_preference(
                ActionType::SelectMail,
                UserClass::Business,
                l as f64,
                300.0,
            );
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }

    #[test]
    fn planted_orderings_hold_in_the_blended_truth() {
        let t = truth();
        let l = 1500.0;
        let n = |a, c| t.normalized_preference(a, c, l, 300.0);
        // Figure 4 ordering.
        assert!(
            n(ActionType::SelectMail, UserClass::Business)
                < n(ActionType::Search, UserClass::Business)
        );
        assert!(
            n(ActionType::Search, UserClass::Business)
                < n(ActionType::ComposeSend, UserClass::Business)
        );
        // Figure 5 ordering.
        assert!(
            n(ActionType::SelectMail, UserClass::Business)
                < n(ActionType::SelectMail, UserClass::Consumer)
        );
    }

    #[test]
    fn period_truth_is_steeper_in_daytime() {
        let t = truth();
        let n = |p| {
            t.normalized_preference_in_period(
                ActionType::SelectMail,
                UserClass::Business,
                1500.0,
                300.0,
                p,
            )
        };
        assert!(n(DayPeriod::Morning8to14) < n(DayPeriod::Evening20to2));
        assert!(n(DayPeriod::Evening20to2) < n(DayPeriod::Night2to8) + 1e-9);
        // Pooled curve sits within the envelope of the periods.
        let pooled =
            t.normalized_preference(ActionType::SelectMail, UserClass::Business, 1500.0, 300.0);
        assert!(pooled > n(DayPeriod::Morning8to14));
        assert!(pooled < n(DayPeriod::Night2to8));
    }

    #[test]
    fn user_subset_truth_reflects_conditioning() {
        let t = truth();
        let fast = t.normalized_preference_for_users(
            ActionType::SelectMail,
            UserClass::Consumer,
            1500.0,
            300.0,
            &|u: &UserProfile| u.network_factor < 0.9,
        );
        let slow = t.normalized_preference_for_users(
            ActionType::SelectMail,
            UserClass::Consumer,
            1500.0,
            300.0,
            &|u: &UserProfile| u.network_factor > 1.1,
        );
        assert!(fast < slow, "fast {fast} slow {slow}");
    }

    #[test]
    fn true_alpha_matches_diurnal_module() {
        let t = truth();
        for p in DayPeriod::all() {
            assert_eq!(
                t.true_alpha(UserClass::Business, p),
                true_alpha(UserClass::Business, p)
            );
        }
    }

    #[test]
    fn unbiased_probes_have_sane_scale() {
        let t = truth();
        let mut rng = StdRng::seed_from_u64(3);
        let probes =
            t.sample_unbiased_probes(ActionType::SelectMail, UserClass::Business, 5_000, &mut rng);
        assert_eq!(probes.len(), 5_000);
        assert!(probes.iter().all(|p| *p > 0.0));
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        // Base median 260ms scaled by congestion/network: broad sanity band.
        assert!(median > 100.0 && median < 900.0, "median = {median}");
    }

    #[test]
    fn truth_series_helper_evaluates_grid() {
        let t = truth();
        let grid = [300.0, 600.0, 900.0];
        let s = truth_series(
            &t,
            ActionType::SelectMail,
            UserClass::Business,
            &grid,
            300.0,
        );
        assert_eq!(s.len(), 3);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!(s[1] > s[2]);
    }
}
