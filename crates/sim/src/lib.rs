//! OWA-like telemetry simulator with planted ground truth.
//!
//! The AutoSens paper is evaluated on two months of Microsoft OWA server
//! logs, which are not available. This crate substitutes a deterministic,
//! seeded simulator that emits the same `(T, A, L, M)` telemetry stream the
//! paper's pipeline consumed, with three properties the methodology needs:
//!
//! 1. **Temporal locality of latency** — a global congestion process
//!    (mean-reverting log-AR(1) on a 1-minute lattice, plus a diurnal load
//!    curve and occasional incident regimes) multiplies every latency sample,
//!    so low-latency and high-latency periods cluster in time (paper §2.1).
//! 2. **A time confounder** — user activity *and* congestion both follow the
//!    clock (busy hours are both the most active and the slowest), so naive
//!    pooling misattributes the time effect to latency, exactly the failure
//!    mode §2.4.1's activity factor corrects.
//! 3. **Planted latency preference** — each candidate action is accepted
//!    with a probability given by a configurable ground-truth preference
//!    curve (per action type × user class, modulated per user and per time
//!    of day), so the inference pipeline's output can be validated against
//!    a known truth — something the paper itself could not do.
//!
//! The crate is organized as:
//!
//! * [`config`] — serde-serializable scenario configuration and presets.
//! * [`diurnal`] — hour-of-day activity profiles (ground truth for `α`).
//! * [`congestion`] — the latency-multiplier process.
//! * [`preference`] — ground-truth preference curves.
//! * [`population`] — user sampling (class, network quality, activity rate).
//! * [`latency`] — composing base/user/congestion/noise into a latency.
//! * [`engine`] — the generator proper (thinned inhomogeneous Poisson).
//! * [`truth`] — exported ground truth for validation.

pub mod config;
pub mod congestion;
pub mod diurnal;
pub mod engine;
pub mod latency;
pub mod population;
pub mod preference;
pub mod sessions;
pub mod truth;

pub use config::{RegimeWindow, Scenario, SimConfig};
pub use engine::{generate, generate_with_threads};
pub use truth::GroundTruth;
