//! The global congestion process: a latency multiplier sampled on a
//! 1-minute lattice.
//!
//! Three components compose multiplicatively (additively in log space):
//!
//! 1. a **diurnal load curve** — latency is higher during busy hours, which
//!    is exactly what makes time a confounder (§2.4.1);
//! 2. a **mean-reverting AR(1)** fluctuation — smooth drift that gives
//!    latency the temporal locality the method requires (§2.1, Figure 1);
//! 3. occasional **incidents** — regime spikes where latency jumps by a
//!    large factor for tens of minutes, mimicking production outages and
//!    giving the series its interspersed fast/slow periods (Figure 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use autosens_stats::dist::{standard_normal, Exponential, LogNormal};

use crate::config::CongestionConfig;

/// A realized congestion series: one multiplier per simulated minute.
#[derive(Debug, Clone)]
pub struct CongestionSeries {
    multipliers: Vec<f64>,
}

impl CongestionSeries {
    /// Generate a series of `n_minutes` multipliers.
    ///
    /// The diurnal component uses *server* time (epoch hours); per-user
    /// timezone offsets are irrelevant here because congestion is a property
    /// of the service, not of the viewer.
    pub fn generate(cfg: &CongestionConfig, n_minutes: usize, seed: u64) -> CongestionSeries {
        assert!(n_minutes > 0, "need at least one minute");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_0C_E5_51);
        let incident_duration = Exponential::new(1.0 / cfg.incident_mean_duration_min)
            .expect("validated mean duration");
        let incident_size = LogNormal::from_median(cfg.incident_median_multiplier, 0.35)
            .expect("validated multiplier");

        let mut multipliers = Vec::with_capacity(n_minutes);
        // AR(1) state, started at its stationary distribution.
        let mut x = cfg.sigma * standard_normal(&mut rng);
        // Innovation scale preserving stationary variance sigma^2.
        let innovation = cfg.sigma * (1.0 - cfg.rho * cfg.rho).sqrt();
        // Incident state: remaining minutes and log-multiplier.
        let mut incident_left = 0.0f64;
        let mut incident_log = 0.0f64;

        for minute in 0..n_minutes {
            let hour = (minute / 60) % 24;
            let mut diurnal = diurnal_log(cfg, hour as u8);
            // Weekend load shift: the epoch (Jan 1) is a Friday, so days
            // 1 and 2 of each week-from-epoch are Saturday/Sunday.
            let day = minute / 1440;
            let weekday = (day + 4) % 7; // 0 = Monday .. 6 = Sunday
            if weekday >= 5 {
                diurnal += cfg.weekend_load_log;
            }

            x = cfg.rho * x + innovation * standard_normal(&mut rng);

            if incident_left <= 0.0 && rng.gen::<f64>() < cfg.incident_rate_per_min {
                incident_left = incident_duration.sample(&mut rng).max(1.0);
                incident_log = incident_size.sample(&mut rng).ln();
            }
            let inc = if incident_left > 0.0 {
                incident_left -= 1.0;
                incident_log
            } else {
                0.0
            };

            // Planted regime windows: a pure lookup against the schedule,
            // consuming no RNG draws, so a scheduled run is bit-identical to
            // its clean twin outside the windows.
            let minute_ms = minute as i64 * 60_000;
            let planted: f64 = cfg
                .regimes
                .iter()
                .filter(|w| (w.start_ms..w.end_ms).contains(&minute_ms))
                .map(|w| w.log_multiplier)
                .sum();

            multipliers.push((diurnal + x + inc + planted).exp());
        }
        CongestionSeries { multipliers }
    }

    /// Multiplier for a given minute index; minutes past the end clamp to
    /// the last value (robustness for boundary timestamps).
    pub fn at_minute(&self, minute: usize) -> f64 {
        let i = minute.min(self.multipliers.len() - 1);
        self.multipliers[i]
    }

    /// Multiplier at a millisecond timestamp since the epoch.
    pub fn at_millis(&self, t_ms: i64) -> f64 {
        let minute = (t_ms.max(0) / 60_000) as usize;
        self.at_minute(minute)
    }

    /// Number of minutes in the series.
    pub fn len(&self) -> usize {
        self.multipliers.len()
    }

    /// Whether the series is empty (never true after generation).
    pub fn is_empty(&self) -> bool {
        self.multipliers.is_empty()
    }

    /// The raw multiplier series.
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }
}

/// The diurnal log-load at a server-local hour: a smooth curve peaking
/// mid-workday, interpolating between the configured trough and peak.
pub fn diurnal_log(cfg: &CongestionConfig, hour: u8) -> f64 {
    assert!(hour < 24, "hour {hour} out of range");
    // Raised-cosine bump centered at 13:00 with ~9 h half-width; clamped so
    // deep night sits at the trough.
    let h = hour as f64;
    let dist = {
        let d = (h - 13.0).abs();
        d.min(24.0 - d)
    };
    let shape = if dist >= 9.0 {
        0.0
    } else {
        0.5 * (1.0 + (std::f64::consts::PI * dist / 9.0).cos())
    };
    cfg.diurnal_trough_log + (cfg.diurnal_peak_log - cfg.diurnal_trough_log) * shape
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_stats::succdiff;

    fn cfg() -> CongestionConfig {
        CongestionConfig::default()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CongestionSeries::generate(&cfg(), 2000, 7);
        let b = CongestionSeries::generate(&cfg(), 2000, 7);
        assert_eq!(a.multipliers(), b.multipliers());
        let c = CongestionSeries::generate(&cfg(), 2000, 8);
        assert_ne!(a.multipliers(), c.multipliers());
    }

    #[test]
    fn multipliers_are_positive_and_sane() {
        let s = CongestionSeries::generate(&cfg(), 7 * 1440, 1);
        assert_eq!(s.len(), 7 * 1440);
        assert!(!s.is_empty());
        for &m in s.multipliers() {
            assert!(m > 0.0 && m < 100.0, "multiplier {m}");
        }
    }

    #[test]
    fn diurnal_peaks_midday_and_troughs_at_night() {
        let c = cfg();
        let peak = diurnal_log(&c, 13);
        let night = diurnal_log(&c, 3);
        assert!((peak - c.diurnal_peak_log).abs() < 1e-9);
        assert!((night - c.diurnal_trough_log).abs() < 0.05);
        assert!(peak > diurnal_log(&c, 9));
        assert!(diurnal_log(&c, 9) > night);
        // Wrap-around distance: hour 23 is closer to 13 than |23-13|=10
        // suggests? No: min(10, 14) = 10 > 9 -> trough.
        assert!((diurnal_log(&c, 23) - c.diurnal_trough_log).abs() < 1e-9);
    }

    #[test]
    fn day_minutes_are_slower_than_night_minutes_on_average() {
        let s = CongestionSeries::generate(&cfg(), 30 * 1440, 3);
        let mut day = Vec::new();
        let mut night = Vec::new();
        for (minute, &m) in s.multipliers().iter().enumerate() {
            let hour = (minute / 60) % 24;
            if (10..16).contains(&hour) {
                day.push(m);
            } else if !(6..22).contains(&hour) {
                night.push(m);
            }
        }
        let day_mean: f64 = day.iter().sum::<f64>() / day.len() as f64;
        let night_mean: f64 = night.iter().sum::<f64>() / night.len() as f64;
        assert!(
            day_mean > 1.4 * night_mean,
            "day {day_mean} vs night {night_mean}"
        );
    }

    #[test]
    fn series_has_strong_temporal_locality() {
        let s = CongestionSeries::generate(&cfg(), 14 * 1440, 5);
        let ratio = succdiff::msd_mad_ratio(s.multipliers()).unwrap();
        assert!(ratio < 0.35, "MSD/MAD = {ratio}");
    }

    #[test]
    fn incidents_produce_large_excursions() {
        // Crank the incident rate so several occur, then verify spikes exist.
        let mut c = cfg();
        c.incident_rate_per_min = 1.0 / 300.0;
        let s = CongestionSeries::generate(&c, 7 * 1440, 11);
        let max = s.multipliers().iter().cloned().fold(0.0, f64::max);
        assert!(max > 2.0, "max multiplier {max}");
    }

    #[test]
    fn no_incidents_when_rate_is_zero() {
        let mut c = cfg();
        c.incident_rate_per_min = 0.0;
        c.sigma = 0.0;
        let s = CongestionSeries::generate(&c, 1440, 2);
        // Pure diurnal: bounded by e^trough..e^peak.
        for &m in s.multipliers() {
            assert!(m >= (c.diurnal_trough_log).exp() - 1e-9);
            assert!(m <= (c.diurnal_peak_log).exp() + 1e-9);
        }
    }

    #[test]
    fn weekend_load_shift_applies_on_weekends_only() {
        let mut c = cfg();
        c.sigma = 0.0;
        c.incident_rate_per_min = 0.0;
        c.weekend_load_log = -0.5;
        // 7 days from the epoch (a Friday): days 1 and 2 are the weekend.
        let s = CongestionSeries::generate(&c, 7 * 1440, 1);
        let noon = |day: usize| s.at_minute(day * 1440 + 12 * 60);
        let friday = noon(0);
        let saturday = noon(1);
        let sunday = noon(2);
        let monday = noon(3);
        assert!((saturday / friday - (-0.5f64).exp()).abs() < 1e-9);
        assert!((sunday / friday - (-0.5f64).exp()).abs() < 1e-9);
        assert!((monday - friday).abs() < 1e-12);
        // Default zero shift leaves weekends untouched.
        let mut c0 = cfg();
        c0.sigma = 0.0;
        c0.incident_rate_per_min = 0.0;
        let s0 = CongestionSeries::generate(&c0, 3 * 1440, 1);
        assert!((s0.at_minute(12 * 60) - s0.at_minute(1440 + 12 * 60)).abs() < 1e-12);
    }

    #[test]
    fn planted_regimes_shift_exactly_inside_their_windows() {
        use crate::config::RegimeWindow;
        let clean = CongestionSeries::generate(&cfg(), 3 * 1440, 9);
        let mut c = cfg();
        c.regimes = vec![RegimeWindow {
            start_ms: 1440 * 60_000,   // day 1
            end_ms: 2 * 1440 * 60_000, // ..day 2
            log_multiplier: 0.9,
        }];
        let planted = CongestionSeries::generate(&c, 3 * 1440, 9);
        let factor = 0.9f64.exp();
        for minute in 0..3 * 1440 {
            let (a, b) = (clean.at_minute(minute), planted.at_minute(minute));
            if (1440..2 * 1440).contains(&minute) {
                assert!(
                    ((b / a) - factor).abs() < 1e-12,
                    "minute {minute}: ratio {}",
                    b / a
                );
            } else {
                // Zero RNG consumption: bit-identical outside the window.
                assert_eq!(a.to_bits(), b.to_bits(), "minute {minute} diverged");
            }
        }
    }

    #[test]
    fn empty_regime_schedule_is_bit_identical() {
        let a = CongestionSeries::generate(&cfg(), 1440, 4);
        let mut c = cfg();
        c.regimes = Vec::new();
        let b = CongestionSeries::generate(&c, 1440, 4);
        let ab: Vec<u64> = a.multipliers().iter().map(|m| m.to_bits()).collect();
        let bb: Vec<u64> = b.multipliers().iter().map(|m| m.to_bits()).collect();
        assert_eq!(ab, bb);
    }

    #[test]
    fn lookup_by_minute_and_millis() {
        let s = CongestionSeries::generate(&cfg(), 100, 1);
        assert_eq!(s.at_minute(0), s.multipliers()[0]);
        assert_eq!(s.at_minute(99), s.multipliers()[99]);
        // Clamps past the end.
        assert_eq!(s.at_minute(1000), s.multipliers()[99]);
        assert_eq!(s.at_millis(0), s.multipliers()[0]);
        assert_eq!(s.at_millis(59_999), s.multipliers()[0]);
        assert_eq!(s.at_millis(60_000), s.multipliers()[1]);
        assert_eq!(s.at_millis(-5), s.multipliers()[0]);
    }
}
