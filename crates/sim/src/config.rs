//! Scenario configuration for the simulator.
//!
//! Everything a simulation run depends on lives in one serde-serializable
//! [`SimConfig`], so runs are fully reproducible from `(config, seed)` and
//! scenarios can be shipped as JSON files.

use serde::{Deserialize, Serialize};

use crate::preference::SensingMode;

/// Named preset scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// Tiny scenario for unit tests and doc examples (seconds to generate).
    Smoke,
    /// The default scenario used by the examples and experiment regenerators:
    /// two simulated months (Jan 1 – Feb 28), a population large enough for
    /// smooth preference curves out to ~2 s latency.
    Default,
    /// A larger population for the benches that sweep generator throughput.
    PaperScale,
}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; every stochastic component derives its stream from this.
    pub seed: u64,
    /// Number of simulated days starting at the epoch (Jan 1).
    pub days: u32,
    /// Number of business users.
    pub n_business: u32,
    /// Number of consumer users.
    pub n_consumer: u32,
    /// Mean candidate-action rate per user per *active* hour (the diurnal
    /// profile scales this by 0..1).
    pub mean_actions_per_active_hour: f64,
    /// Log-space spread of per-user activity rates.
    pub activity_sigma: f64,
    /// Log-space spread of per-user network quality factors (drives the
    /// §3.4 latency quartiles).
    pub network_sigma: f64,
    /// Per-action lognormal noise sigma (log space).
    pub latency_noise_sigma: f64,
    /// Probability that a generated action is logged as an error (errors are
    /// excluded by the analysis, as in the paper's §3.1).
    pub error_rate: f64,
    /// How users sense latency when exercising their preference.
    pub sensing: SensingMode,
    /// Exponent applied to preference curves during the daytime periods vs
    /// night (§3.6 ground truth): `[morning, afternoon, evening, night]`.
    pub period_exponents: [f64; 4],
    /// Strength of the conditioning-to-speed effect (§3.4): the preference
    /// exponent for a user is `(1/network_factor)^conditioning_strength`,
    /// clamped to `[0.5, 2.0]`. Zero disables conditioning.
    pub conditioning_strength: f64,
    /// Timezone offsets (whole hours) users are spread across, assigned
    /// round-robin. Default `[0]`: a single-region population, matching the
    /// paper's per-country analysis slices. With several offsets, analyses
    /// should slice per region (`Slice::tz_offset_hours`) exactly as the
    /// paper restricts to U.S. users.
    #[serde(default = "default_tz_offsets")]
    pub tz_offsets_hours: Vec<i64>,
    /// Congestion process parameters.
    pub congestion: CongestionConfig,
    /// Upper latency bound used by downstream binning, carried here so the
    /// simulator and analysis agree (values above are still *generated*;
    /// the analysis discards them, as any real pipeline would cap its axis).
    pub latency_hi_ms: f64,
}

fn default_tz_offsets() -> Vec<i64> {
    vec![0]
}

/// Parameters of the global congestion multiplier process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionConfig {
    /// AR(1) coefficient per minute (0..1); higher = more temporal locality.
    pub rho: f64,
    /// Stationary log-space standard deviation of the AR(1) component.
    pub sigma: f64,
    /// Peak (busy-hour) log-multiplier of the diurnal load curve.
    pub diurnal_peak_log: f64,
    /// Trough (night) log-multiplier of the diurnal load curve.
    pub diurnal_trough_log: f64,
    /// Probability per minute of an incident (regime spike) starting.
    pub incident_rate_per_min: f64,
    /// Mean incident duration in minutes (exponential).
    pub incident_mean_duration_min: f64,
    /// Median latency multiplier during an incident.
    pub incident_median_multiplier: f64,
    /// Additive log-load applied on weekends (default 0). A negative value
    /// models a service that is faster on weekends because load drops —
    /// which makes *day of week* a confounder, the case the paper's §2.4.1
    /// names but folds into its time normalization. Exercised by the
    /// weekday/weekend-aware alpha grouping.
    #[serde(default)]
    pub weekend_load_log: f64,
    /// Planted regime windows with *known* boundaries, applied additively in
    /// log space on top of the stochastic process — the labeled ground truth
    /// the regime-shift detector is scored against. The schedule consumes
    /// zero RNG draws, so an empty schedule is bit-identical to not having
    /// the field at all and a planted run differs from its clean twin only
    /// inside the windows.
    #[serde(default)]
    pub regimes: Vec<RegimeWindow>,
}

/// One planted congestion regime: between `start_ms` and `end_ms`
/// (half-open, epoch milliseconds) the log-multiplier shifts by
/// `log_multiplier`. Overlapping windows add.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegimeWindow {
    /// Window start, epoch ms (inclusive).
    pub start_ms: i64,
    /// Window end, epoch ms (exclusive).
    pub end_ms: i64,
    /// Additive log-space shift while the window is active (e.g. `0.9`
    /// multiplies latency by ~2.46×).
    pub log_multiplier: f64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        // The AR component is deliberately strong relative to the per-user
        // and per-action spreads (see `SimConfig::scenario`): AutoSens
        // infers preference from activity modulation against the *shared*
        // latency level, so that level must dominate observed latency —
        // which is also what the paper's own Figure 1 (very low MSD/MAD on
        // OWA data, i.e. successive cross-user samples are similar) shows
        // for the real service.
        CongestionConfig {
            rho: 0.985,
            sigma: 0.50,
            diurnal_peak_log: 0.45,    // e^0.45 ~ 1.57x at the busiest hour
            diurnal_trough_log: -0.35, // e^-0.35 ~ 0.70x at night
            incident_rate_per_min: 1.0 / 1440.0, // ~one per day
            incident_mean_duration_min: 60.0,
            incident_median_multiplier: 2.2,
            weekend_load_log: 0.0,
            regimes: Vec::new(),
        }
    }
}

impl SimConfig {
    /// Resolve a named scenario into a concrete configuration.
    pub fn scenario(which: Scenario) -> SimConfig {
        match which {
            Scenario::Smoke => SimConfig {
                seed: 0xA0705E75,
                days: 14,
                n_business: 300,
                n_consumer: 300,
                ..SimConfig::scenario(Scenario::Default)
            },
            // Per-user (`network_sigma`) and per-action
            // (`latency_noise_sigma`) spreads are kept well below the
            // congestion spread: the idiosyncratic variance shrinks the
            // recovered curve's latency axis by
            // `s_level^2 / (s_level^2 + s_idio^2)` in log space, so a
            // shared-dominant mix is required for faithful recovery — and
            // matches the strong cross-user locality the paper reports.
            Scenario::Default => SimConfig {
                seed: 0xA0705E75,
                days: 59, // Jan 1 .. Feb 28
                n_business: 700,
                n_consumer: 700,
                mean_actions_per_active_hour: 2.6,
                activity_sigma: 0.5,
                network_sigma: 0.15,
                latency_noise_sigma: 0.12,
                error_rate: 0.01,
                sensing: SensingMode::Oracle,
                period_exponents: [1.15, 1.0, 0.7, 0.5],
                conditioning_strength: 2.2,
                tz_offsets_hours: vec![0],
                congestion: CongestionConfig::default(),
                latency_hi_ms: 5_000.0,
            },
            Scenario::PaperScale => SimConfig {
                n_business: 2_500,
                n_consumer: 2_500,
                ..SimConfig::scenario(Scenario::Default)
            },
        }
    }

    /// Total user count.
    pub fn n_users(&self) -> u32 {
        self.n_business + self.n_consumer
    }

    /// Number of simulated minutes.
    pub fn n_minutes(&self) -> usize {
        self.days as usize * 24 * 60
    }

    /// Validate parameter domains; call before generating.
    pub fn validate(&self) -> Result<(), String> {
        if self.days == 0 {
            return Err("days must be >= 1".into());
        }
        if self.n_users() == 0 {
            return Err("population must be non-empty".into());
        }
        if self.mean_actions_per_active_hour.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        {
            return Err("mean_actions_per_active_hour must be > 0".into());
        }
        for (name, v) in [
            ("activity_sigma", self.activity_sigma),
            ("network_sigma", self.network_sigma),
            ("latency_noise_sigma", self.latency_noise_sigma),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and >= 0"));
            }
        }
        if !(0.0..=1.0).contains(&self.error_rate) {
            return Err("error_rate must be in [0,1]".into());
        }
        if self
            .period_exponents
            .iter()
            .any(|e| !e.is_finite() || *e <= 0.0)
        {
            return Err("period_exponents must be positive".into());
        }
        if !(self.conditioning_strength.is_finite() && self.conditioning_strength >= 0.0) {
            return Err("conditioning_strength must be >= 0".into());
        }
        if self.tz_offsets_hours.is_empty() {
            return Err("tz_offsets_hours must not be empty".into());
        }
        if self.tz_offsets_hours.iter().any(|h| h.abs() > 14) {
            return Err("tz_offsets_hours must be within +/-14".into());
        }
        let c = &self.congestion;
        if !(0.0..1.0).contains(&c.rho) {
            return Err("congestion.rho must be in [0,1)".into());
        }
        if !(c.sigma.is_finite() && c.sigma >= 0.0) {
            return Err("congestion.sigma must be >= 0".into());
        }
        if !(c.incident_rate_per_min >= 0.0 && c.incident_rate_per_min <= 1.0) {
            return Err("congestion.incident_rate_per_min must be in [0,1]".into());
        }
        if !c.incident_mean_duration_min.is_finite() || c.incident_mean_duration_min <= 0.0 {
            return Err("congestion.incident_mean_duration_min must be > 0".into());
        }
        if !c.incident_median_multiplier.is_finite() || c.incident_median_multiplier <= 0.0 {
            return Err("congestion.incident_median_multiplier must be > 0".into());
        }
        if !c.weekend_load_log.is_finite() {
            return Err("congestion.weekend_load_log must be finite".into());
        }
        for w in &c.regimes {
            if w.end_ms <= w.start_ms {
                return Err(format!(
                    "congestion.regimes window [{}, {}) is empty or inverted",
                    w.start_ms, w.end_ms
                ));
            }
            if !w.log_multiplier.is_finite() {
                return Err("congestion.regimes log_multiplier must be finite".into());
            }
        }
        if !self.latency_hi_ms.is_finite() || self.latency_hi_ms <= 0.0 {
            return Err("latency_hi_ms must be > 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for s in [Scenario::Smoke, Scenario::Default, Scenario::PaperScale] {
            let cfg = SimConfig::scenario(s);
            assert!(cfg.validate().is_ok(), "{s:?}: {:?}", cfg.validate());
        }
    }

    #[test]
    fn smoke_is_smaller_than_default() {
        let smoke = SimConfig::scenario(Scenario::Smoke);
        let def = SimConfig::scenario(Scenario::Default);
        assert!(smoke.days < def.days);
        assert!(smoke.n_users() < def.n_users());
        assert_eq!(def.days, 59, "Jan+Feb of a non-leap year");
    }

    #[test]
    fn derived_quantities() {
        let cfg = SimConfig::scenario(Scenario::Smoke);
        assert_eq!(cfg.n_users(), 600);
        assert_eq!(cfg.n_minutes(), 14 * 1440);
    }

    #[test]
    fn validation_catches_each_violation() {
        let good = SimConfig::scenario(Scenario::Smoke);
        let mut c;

        c = good.clone();
        c.days = 0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.n_business = 0;
        c.n_consumer = 0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.mean_actions_per_active_hour = 0.0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.activity_sigma = -1.0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.error_rate = 1.5;
        assert!(c.validate().is_err());

        c = good.clone();
        c.period_exponents[2] = 0.0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.conditioning_strength = f64::NAN;
        assert!(c.validate().is_err());

        c = good.clone();
        c.congestion.rho = 1.0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.congestion.sigma = f64::NAN;
        assert!(c.validate().is_err());

        c = good.clone();
        c.congestion.incident_rate_per_min = 2.0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.congestion.incident_mean_duration_min = 0.0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.congestion.incident_median_multiplier = -2.0;
        assert!(c.validate().is_err());

        c = good.clone();
        c.congestion.regimes = vec![RegimeWindow {
            start_ms: 100,
            end_ms: 100,
            log_multiplier: 0.5,
        }];
        assert!(c.validate().is_err());

        c = good.clone();
        c.congestion.regimes = vec![RegimeWindow {
            start_ms: 0,
            end_ms: 100,
            log_multiplier: f64::INFINITY,
        }];
        assert!(c.validate().is_err());

        c = good.clone();
        c.latency_hi_ms = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = SimConfig::scenario(Scenario::Default);
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
