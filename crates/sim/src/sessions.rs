//! Session-based workload generation for the *non-sticky service* extension.
//!
//! The paper (§4) argues AutoSens applies beyond "sticky" services like
//! email to services users can simply abandon — where the natural signal is
//! **session continuation**: after an action completes with latency `L`,
//! does the user perform another action or walk away? This module generates
//! telemetry from an explicit session model with a *planted continuation
//! curve*, so the `autosens-core` abandonment analysis can be validated the
//! same way the preference pipeline is.
//!
//! Model: per user, sessions arrive as an inhomogeneous Poisson process
//! (diurnal activity profile); within a session, after each action the user
//! continues with probability `base_continue x q(L)` where `q` is the
//! planted [`PrefCurve`] for the user's class, and inter-action gaps are
//! exponential. Latency comes from the same congestion/network/noise model
//! as the rate-based generator.

use rand::Rng;
use serde::{Deserialize, Serialize};

use autosens_stats::dist::{poisson, Exponential};
use autosens_telemetry::log::TelemetryLog;
use autosens_telemetry::record::UserClass;
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome};
use autosens_telemetry::time::{SimTime, MS_PER_HOUR};

use crate::config::SimConfig;
use crate::congestion::CongestionSeries;
use crate::diurnal::activity_level;
use crate::latency::LatencyModel;
use crate::population::{sample_population, user_rng};
use crate::preference::PrefCurve;
use crate::truth::GroundTruth;

/// Configuration of the session model, layered on a [`SimConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Mean sessions per user per fully-active hour.
    pub sessions_per_active_hour: f64,
    /// Mean within-session inter-action gap in ms.
    pub mean_gap_ms: f64,
    /// Latency-independent continuation probability (session "stickiness").
    pub base_continue: f64,
    /// Planted continuation curve for business users.
    pub continuation_business: PrefCurve,
    /// Planted continuation curve for consumers (shallower: less invested).
    pub continuation_consumer: PrefCurve,
    /// Hard cap on actions per session (guards runaway loops).
    pub max_actions_per_session: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            sessions_per_active_hour: 0.8,
            mean_gap_ms: 25_000.0,
            base_continue: 0.92,
            continuation_business: PrefCurve {
                floor: 0.55,
                amp: 0.55,
                tau_ms: 700.0,
            },
            continuation_consumer: PrefCurve {
                floor: 0.70,
                amp: 0.35,
                tau_ms: 800.0,
            },
            max_actions_per_session: 200,
        }
    }
}

impl SessionConfig {
    /// The planted continuation curve for a class.
    pub fn continuation(&self, class: UserClass) -> PrefCurve {
        match class {
            UserClass::Business => self.continuation_business,
            UserClass::Consumer => self.continuation_consumer,
        }
    }

    /// Validate parameter domains.
    pub fn validate(&self) -> Result<(), String> {
        if !self.sessions_per_active_hour.is_finite() || self.sessions_per_active_hour <= 0.0 {
            return Err("sessions_per_active_hour must be > 0".into());
        }
        if !self.mean_gap_ms.is_finite() || self.mean_gap_ms <= 0.0 {
            return Err("mean_gap_ms must be > 0".into());
        }
        if !(0.0 < self.base_continue && self.base_continue < 1.0) {
            return Err("base_continue must be in (0,1)".into());
        }
        if self.max_actions_per_session == 0 {
            return Err("max_actions_per_session must be >= 1".into());
        }
        Ok(())
    }
}

/// Generate session-structured telemetry with a planted continuation curve.
///
/// Returns the log plus the ground truth (population + congestion) of the
/// underlying latency model. The session structure itself is implicit in
/// the record stream — exactly what a server log would show.
pub fn generate_sessions(
    cfg: &SimConfig,
    scfg: &SessionConfig,
) -> Result<(TelemetryLog, GroundTruth), String> {
    cfg.validate()?;
    scfg.validate()?;
    let population = sample_population(cfg);
    let congestion = CongestionSeries::generate(&cfg.congestion, cfg.n_minutes(), cfg.seed);
    let model = LatencyModel::new(&congestion, cfg.latency_noise_sigma);
    let horizon_ms = cfg.n_minutes() as i64 * 60_000;

    let mut records = Vec::new();
    for (user_index, user) in population.iter().enumerate() {
        let mut rng = user_rng(cfg.seed, user_index as u32, 2);
        let gap = Exponential::new(1.0 / scfg.mean_gap_ms).expect("validated gap");
        let q = scfg.continuation(user.class);

        for day in 0..cfg.days as i64 {
            for hour in 0..24i64 {
                let hour_start = SimTime::from_dhm(day, hour, 0);
                let local_hour = hour_start.hour_of_day_local(user.tz_offset_ms);
                let weekend = hour_start.is_weekend_local(user.tz_offset_ms);
                let lambda =
                    scfg.sessions_per_active_hour * activity_level(user.class, local_hour, weekend);
                let n_sessions = poisson(&mut rng, lambda).expect("lambda validated");
                for _ in 0..n_sessions {
                    let mut t = hour_start.millis() + rng.gen_range(0..MS_PER_HOUR);
                    for _ in 0..scfg.max_actions_per_session {
                        if t >= horizon_ms {
                            break;
                        }
                        let action = ActionType::SelectMail;
                        let latency = model.sample_ms(user, action, t, &mut rng);
                        let outcome = if rng.gen::<f64>() < cfg.error_rate {
                            Outcome::Error
                        } else {
                            Outcome::Success
                        };
                        records.push(ActionRecord {
                            time: SimTime(t),
                            action,
                            latency_ms: latency,
                            user: user.id,
                            class: user.class,
                            tz_offset_ms: user.tz_offset_ms,
                            outcome,
                        });
                        // Continue the session?
                        let p_continue = scfg.base_continue * q.eval(latency);
                        if rng.gen::<f64>() >= p_continue {
                            break;
                        }
                        t += gap.sample(&mut rng).ceil() as i64 + 1;
                    }
                }
            }
        }
    }

    let mut log = TelemetryLog::from_records(records).map_err(|e| e.to_string())?;
    log.ensure_sorted();
    let truth = GroundTruth::new(cfg.clone(), population, congestion);
    Ok((log, truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scenario;

    fn small_cfg() -> SimConfig {
        let mut cfg = SimConfig::scenario(Scenario::Smoke);
        cfg.days = 5;
        cfg.n_business = 100;
        cfg.n_consumer = 100;
        cfg
    }

    #[test]
    fn default_session_config_is_valid() {
        assert!(SessionConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_violations() {
        let good = SessionConfig::default();
        let mut c;
        c = good.clone();
        c.sessions_per_active_hour = 0.0;
        assert!(c.validate().is_err());
        c = good.clone();
        c.mean_gap_ms = -1.0;
        assert!(c.validate().is_err());
        c = good.clone();
        c.base_continue = 1.0;
        assert!(c.validate().is_err());
        c = good.clone();
        c.max_actions_per_session = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn generates_sorted_valid_records() {
        let (log, _) = generate_sessions(&small_cfg(), &SessionConfig::default()).unwrap();
        assert!(log.len() > 1_000, "got {}", log.len());
        assert!(log.is_sorted());
        for r in log.iter().take(1000) {
            assert!(r.validate().is_ok());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let scfg = SessionConfig::default();
        let (a, _) = generate_sessions(&small_cfg(), &scfg).unwrap();
        let (b, _) = generate_sessions(&small_cfg(), &scfg).unwrap();
        assert_eq!(a.to_records(), b.to_records());
    }

    #[test]
    fn sessions_are_longer_when_latency_is_low() {
        // Freeze all latency variation except the user's network factor;
        // fast users should produce more actions per session start.
        let mut cfg = small_cfg();
        cfg.congestion.sigma = 0.0;
        cfg.congestion.incident_rate_per_min = 0.0;
        cfg.congestion.diurnal_peak_log = 0.0;
        cfg.congestion.diurnal_trough_log = 0.0;
        cfg.latency_noise_sigma = 0.0;
        cfg.network_sigma = 0.6; // widen the spread so the effect is clear
        let (log, truth) = generate_sessions(&cfg, &SessionConfig::default()).unwrap();
        // Mean actions per user, split by network factor.
        let mut counts = std::collections::HashMap::new();
        for r in log.iter() {
            *counts.entry(r.user).or_insert(0usize) += 1;
        }
        let mut fast_total = 0.0;
        let mut fast_n = 0.0;
        let mut slow_total = 0.0;
        let mut slow_n = 0.0;
        for u in truth.population() {
            let c = *counts.get(&u.id).unwrap_or(&0) as f64;
            if u.network_factor < 0.8 {
                fast_total += c;
                fast_n += 1.0;
            } else if u.network_factor > 1.25 {
                slow_total += c;
                slow_n += 1.0;
            }
        }
        assert!(fast_n > 5.0 && slow_n > 5.0);
        let fast_mean = fast_total / fast_n;
        let slow_mean = slow_total / slow_n;
        assert!(
            fast_mean > 1.2 * slow_mean,
            "fast {fast_mean:.1} vs slow {slow_mean:.1} actions/user"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = small_cfg();
        cfg.days = 0;
        assert!(generate_sessions(&cfg, &SessionConfig::default()).is_err());
        let scfg = SessionConfig {
            base_continue: 2.0,
            ..SessionConfig::default()
        };
        assert!(generate_sessions(&small_cfg(), &scfg).is_err());
    }
}
