//! The workload generator: a thinned inhomogeneous Poisson process.
//!
//! For every user and every simulated hour, candidate actions arrive at rate
//! `user_rate x diurnal_activity(class, local hour, weekend)`. Each candidate
//! draws an action type and an end-to-end latency; the user then *performs*
//! the action with probability `p(sensed latency)^gamma` where `p` is the
//! planted preference curve and `gamma` composes the user's conditioning
//! exponent with the time-of-day exponent. Rejected candidates leave no
//! trace — exactly like a user who looked at a sluggish inbox and walked
//! away.
//!
//! Generation is deterministic and embarrassingly parallel: every user has
//! an RNG derived from `(master seed, user id)`, shards are concatenated in
//! user order, and the final stable sort by time breaks timestamp ties in
//! that same deterministic order.

use rand::Rng;

use autosens_telemetry::log::TelemetryLog;
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome};
use autosens_telemetry::time::{SimTime, MS_PER_HOUR};

use autosens_stats::dist::poisson;

use crate::config::SimConfig;
use crate::congestion::CongestionSeries;
use crate::diurnal::activity_level;
use crate::latency::LatencyModel;
use crate::population::{sample_population, user_rng, UserProfile};
use crate::preference::{base_curve, period_exponent, SensingMode};
use crate::truth::GroundTruth;

/// Action-type mixture of candidate actions (must sum to 1).
const ACTION_MIX: [(ActionType, f64); 5] = [
    (ActionType::SelectMail, 0.40),
    (ActionType::SwitchFolder, 0.20),
    (ActionType::Search, 0.15),
    (ActionType::ComposeSend, 0.15),
    (ActionType::Other, 0.10),
];

fn draw_action<R: Rng>(rng: &mut R) -> ActionType {
    let mut u: f64 = rng.gen();
    for (action, w) in ACTION_MIX {
        if u < w {
            return action;
        }
        u -= w;
    }
    ActionType::Other
}

/// Generate the telemetry log and its ground truth for a configuration.
///
/// Returns an error string when the configuration is invalid.
///
/// ```
/// use autosens_sim::{generate, Scenario, SimConfig};
///
/// // A deliberately tiny run for the doctest.
/// let mut cfg = SimConfig::scenario(Scenario::Smoke);
/// cfg.days = 1;
/// cfg.n_business = 20;
/// cfg.n_consumer = 20;
/// let (log, truth) = generate(&cfg).unwrap();
/// assert!(log.is_sorted());
/// assert_eq!(truth.population().len(), 40);
/// // Same config, same telemetry — byte for byte.
/// let (again, _) = generate(&cfg).unwrap();
/// assert_eq!(log.to_records(), again.to_records());
/// ```
pub fn generate(cfg: &SimConfig) -> Result<(TelemetryLog, GroundTruth), String> {
    generate_with_threads(cfg, 0)
}

/// [`generate`] with an explicit worker count (`0` = all available cores).
///
/// Generation runs as a chunked job over the user population on the
/// work-stealing scheduler. Every user's records come from an RNG derived
/// from `(master seed, user id)` and per-chunk shards concatenate in user
/// order, so the telemetry is byte-identical for every thread count.
pub fn generate_with_threads(
    cfg: &SimConfig,
    threads: usize,
) -> Result<(TelemetryLog, GroundTruth), String> {
    cfg.validate()?;
    let mut span = autosens_obs::Recorder::global().root("sim.generate");
    span.field("users", (cfg.n_business + cfg.n_consumer) as u64);
    span.field("days", cfg.days as u64);
    let population = sample_population(cfg);
    let congestion = CongestionSeries::generate(&cfg.congestion, cfg.n_minutes(), cfg.seed);

    // Users are heavy items (a full simulated calendar each), so chunks
    // are much smaller than record-range chunks; boundaries still depend
    // only on the population size.
    let n_users = population.len();
    let chunk_size = (n_users / 64).clamp(1, 256);
    let (shards, report) = autosens_exec::run_chunks(
        "sim_generate",
        n_users,
        chunk_size,
        threads,
        |_, range| -> Vec<ActionRecord> {
            let mut out = Vec::new();
            for i in range {
                out.extend(generate_for_user(
                    cfg,
                    &population[i],
                    i as u32,
                    &congestion,
                ));
            }
            out
        },
    )
    .map_err(|e| format!("generation worker panicked: {e}"))?;

    // Simulated records are valid by construction; skip re-validation.
    let mut log = TelemetryLog::from_trusted_records(shards.concat());
    log.ensure_sorted();

    span.field("records", log.len() as u64);
    span.field("exec_chunks", report.n_chunks as u64);
    span.field("exec_threads", report.threads as u64);
    let metrics = autosens_obs::MetricsRegistry::global();
    metrics
        .counter("autosens_sim_records_generated_total")
        .add(log.len() as u64);
    metrics
        .counter("autosens_exec_chunks_total")
        .add(report.n_chunks as u64);

    let truth = GroundTruth::new(cfg.clone(), population, congestion);
    Ok((log, truth))
}

/// Generate one user's records (already time-ordered within the user).
fn generate_for_user(
    cfg: &SimConfig,
    user: &UserProfile,
    user_index: u32,
    congestion: &CongestionSeries,
) -> Vec<ActionRecord> {
    let mut rng = user_rng(cfg.seed, user_index, 1);
    let model = LatencyModel::new(congestion, cfg.latency_noise_sigma);
    let mut records = Vec::new();
    // EMA state for the Ema sensing mode, seeded at the user's baseline level.
    let mut ema = base_median_for_start(user);

    let mut candidate_times: Vec<i64> = Vec::new();
    for day in 0..cfg.days as i64 {
        for hour in 0..24i64 {
            let hour_start = SimTime::from_dhm(day, hour, 0);
            let local_hour = hour_start.hour_of_day_local(user.tz_offset_ms);
            let weekend = hour_start.is_weekend_local(user.tz_offset_ms);
            let lambda =
                user.rate_per_active_hour * activity_level(user.class, local_hour, weekend);
            let n = poisson(&mut rng, lambda).expect("lambda validated");
            if n == 0 {
                continue;
            }
            // Candidate instants, time-ordered within the hour so the EMA
            // sensing mode sees experiences chronologically.
            candidate_times.clear();
            for _ in 0..n {
                candidate_times.push(hour_start.millis() + rng.gen_range(0..MS_PER_HOUR));
            }
            candidate_times.sort_unstable();

            for &t_ms in candidate_times.iter() {
                let action = draw_action(&mut rng);
                let latency = model.sample_ms(user, action, t_ms, &mut rng);
                let sensed = match cfg.sensing {
                    SensingMode::Oracle => latency,
                    SensingMode::Level => model.level_ms(user, action, t_ms),
                    SensingMode::Ema { .. } => ema,
                };
                let t = SimTime(t_ms);
                let gamma = user.conditioning_gamma
                    * period_exponent(&cfg.period_exponents, t.day_period_local(user.tz_offset_ms));
                let accept_p = base_curve(action, user.class).eval(sensed).powf(gamma);
                if rng.gen::<f64>() >= accept_p {
                    continue;
                }
                // The user performed the action and experienced `latency`.
                if let SensingMode::Ema { beta } = cfg.sensing {
                    ema = beta * ema + (1.0 - beta) * latency;
                }
                let outcome = if rng.gen::<f64>() < cfg.error_rate {
                    Outcome::Error
                } else {
                    Outcome::Success
                };
                records.push(ActionRecord {
                    time: t,
                    action,
                    latency_ms: latency,
                    user: user.id,
                    class: user.class,
                    tz_offset_ms: user.tz_offset_ms,
                    outcome,
                });
            }
        }
    }
    records
}

/// Initial EMA value: the user's baseline level for a typical action under
/// unit congestion.
fn base_median_for_start(user: &UserProfile) -> f64 {
    crate::latency::base_median_ms(ActionType::SelectMail) * user.network_factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scenario;
    use autosens_telemetry::record::UserClass;

    fn smoke() -> SimConfig {
        SimConfig::scenario(Scenario::Smoke)
    }

    #[test]
    fn action_mix_sums_to_one() {
        let total: f64 = ACTION_MIX.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn draw_action_follows_mixture() {
        let mut rng = user_rng(0, 0, 9);
        let mut counts = std::collections::HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(draw_action(&mut rng)).or_insert(0usize) += 1;
        }
        for (action, w) in ACTION_MIX {
            let frac = counts[&action] as f64 / n as f64;
            assert!((frac - w).abs() < 0.01, "{action:?}: {frac} vs {w}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = smoke();
        let (a, _) = generate(&cfg).unwrap();
        let (b, _) = generate(&cfg).unwrap();
        assert_eq!(a.to_records(), b.to_records());
    }

    #[test]
    fn generation_is_identical_across_thread_counts() {
        let cfg = smoke();
        let (reference, _) = generate_with_threads(&cfg, 1).unwrap();
        for threads in [2, 4, 8] {
            let (log, _) = generate_with_threads(&cfg, threads).unwrap();
            assert_eq!(
                log.to_records(),
                reference.to_records(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = smoke();
        let (a, _) = generate(&cfg).unwrap();
        cfg.seed += 1;
        let (b, _) = generate(&cfg).unwrap();
        assert_ne!(a.to_records(), b.to_records());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = smoke();
        cfg.days = 0;
        assert!(generate(&cfg).is_err());
    }

    #[test]
    fn log_is_sorted_and_in_range() {
        let cfg = smoke();
        let (log, _) = generate(&cfg).unwrap();
        assert!(log.is_sorted());
        assert!(!log.is_empty());
        let end = (cfg.days as i64) * 24 * MS_PER_HOUR;
        for r in log.iter() {
            assert!(r.time.millis() >= 0 && r.time.millis() < end);
            assert!(r.latency_ms > 0.0 && r.latency_ms.is_finite());
        }
    }

    #[test]
    fn both_classes_and_all_actions_present() {
        let (log, _) = generate(&smoke()).unwrap();
        for class in UserClass::all() {
            assert!(log.iter().any(|r| r.class == class), "{class:?} missing");
        }
        for action in ActionType::analyzed() {
            assert!(log.iter().any(|r| r.action == action), "{action:?} missing");
        }
    }

    #[test]
    fn error_rate_roughly_respected() {
        let (log, _) = generate(&smoke()).unwrap();
        let n_err = log.iter().filter(|r| r.outcome == Outcome::Error).count();
        let frac = n_err as f64 / log.len() as f64;
        let expect = smoke().error_rate;
        assert!((frac - expect).abs() < 0.01, "error fraction {frac}");
    }

    #[test]
    fn day_activity_exceeds_night_activity() {
        let (log, _) = generate(&smoke()).unwrap();
        let mut day = 0usize;
        let mut night = 0usize;
        for r in log.iter() {
            let h = r.time.hour_of_day_local(r.tz_offset_ms);
            if (9..17).contains(&h) {
                day += 1;
            } else if h < 6 {
                night += 1;
            }
        }
        // 8 day hours vs 6 night hours; per-hour rate must differ hugely.
        let day_rate = day as f64 / 8.0;
        let night_rate = night as f64 / 6.0;
        assert!(
            day_rate > 3.0 * night_rate,
            "day {day_rate} night {night_rate}"
        );
    }

    #[test]
    fn higher_latency_users_act_less_given_same_rate() {
        // Direct check of the planted preference: freeze diurnal and
        // congestion noise so latency differences come only from the
        // network factor, then compare acceptance volume.
        let mut cfg = smoke();
        cfg.congestion.sigma = 0.0;
        cfg.congestion.incident_rate_per_min = 0.0;
        cfg.conditioning_strength = 0.0;
        cfg.latency_noise_sigma = 0.0;
        let congestion = CongestionSeries::generate(&cfg.congestion, cfg.n_minutes(), cfg.seed);
        let mk_user = |network: f64| UserProfile {
            id: autosens_telemetry::record::UserId(0),
            class: UserClass::Business,
            network_factor: network,
            rate_per_active_hour: 3.0,
            tz_offset_ms: 0,
            conditioning_gamma: 1.0,
        };
        let fast = generate_for_user(&cfg, &mk_user(0.5), 0, &congestion);
        let slow = generate_for_user(&cfg, &mk_user(3.0), 0, &congestion);
        assert!(
            fast.len() as f64 > 1.1 * slow.len() as f64,
            "fast {} slow {}",
            fast.len(),
            slow.len()
        );
    }

    #[test]
    fn ema_sensing_mode_runs() {
        let mut cfg = smoke();
        cfg.sensing = SensingMode::Ema { beta: 0.8 };
        let (log, _) = generate(&cfg).unwrap();
        assert!(!log.is_empty());
    }

    #[test]
    fn level_sensing_mode_runs() {
        let mut cfg = smoke();
        cfg.sensing = SensingMode::Level;
        let (log, _) = generate(&cfg).unwrap();
        assert!(!log.is_empty());
    }
}
