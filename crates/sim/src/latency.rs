//! Latency synthesis: composing base action cost, per-user network quality,
//! the global congestion multiplier, and per-action noise into one
//! end-to-end latency sample.
//!
//! `L = base_median(action) x network(user) x congestion(t) x lognoise`
//!
//! The *level* (everything except the lognormal noise) is the predictable
//! component a user could plausibly sense; the noise is per-action jitter.

use rand::Rng;

use autosens_stats::dist::LogNormal;
use autosens_telemetry::record::ActionType;

use crate::congestion::CongestionSeries;
use crate::population::UserProfile;

/// Median base latency per action type in ms (unit congestion, unit network).
///
/// Search is intrinsically the slowest (it scans the mailbox); folder
/// switches and mail selection are fast render paths; ComposeSend measures
/// the (quick) UI acknowledgement of an asynchronous send.
pub fn base_median_ms(action: ActionType) -> f64 {
    match action {
        ActionType::SelectMail => 260.0,
        ActionType::SwitchFolder => 290.0,
        ActionType::Search => 420.0,
        ActionType::ComposeSend => 300.0,
        ActionType::Other => 320.0,
    }
}

/// Synthesizes latencies against a congestion series.
#[derive(Debug, Clone)]
pub struct LatencyModel<'a> {
    congestion: &'a CongestionSeries,
    noise_sigma: f64,
}

impl<'a> LatencyModel<'a> {
    /// Create a model over a congestion series with the configured per-action
    /// lognormal noise sigma.
    pub fn new(congestion: &'a CongestionSeries, noise_sigma: f64) -> Self {
        assert!(
            noise_sigma.is_finite() && noise_sigma >= 0.0,
            "noise sigma must be finite and >= 0"
        );
        LatencyModel {
            congestion,
            noise_sigma,
        }
    }

    /// The predictable latency level for (user, action) at time `t_ms`:
    /// everything but the per-action noise.
    pub fn level_ms(&self, user: &UserProfile, action: ActionType, t_ms: i64) -> f64 {
        base_median_ms(action) * user.network_factor * self.congestion.at_millis(t_ms)
    }

    /// Draw one end-to-end latency sample.
    pub fn sample_ms<R: Rng>(
        &self,
        user: &UserProfile,
        action: ActionType,
        t_ms: i64,
        rng: &mut R,
    ) -> f64 {
        let level = self.level_ms(user, action, t_ms);
        if self.noise_sigma == 0.0 {
            return level;
        }
        let noise = LogNormal::new(0.0, self.noise_sigma).expect("validated sigma");
        level * noise.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CongestionConfig;
    use autosens_telemetry::record::{UserClass, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn user(network: f64) -> UserProfile {
        UserProfile {
            id: UserId(0),
            class: UserClass::Business,
            network_factor: network,
            rate_per_active_hour: 1.0,
            tz_offset_ms: 0,
            conditioning_gamma: 1.0,
        }
    }

    fn flat_congestion() -> CongestionSeries {
        let cfg = CongestionConfig {
            sigma: 0.0,
            incident_rate_per_min: 0.0,
            diurnal_peak_log: 0.0,
            diurnal_trough_log: 0.0,
            ..CongestionConfig::default()
        };
        CongestionSeries::generate(&cfg, 100, 0)
    }

    #[test]
    fn base_medians_order_as_designed() {
        assert!(base_median_ms(ActionType::SelectMail) < base_median_ms(ActionType::Search));
        assert!(base_median_ms(ActionType::SwitchFolder) < base_median_ms(ActionType::Search));
        for a in ActionType::analyzed() {
            assert!(base_median_ms(a) > 0.0);
        }
    }

    #[test]
    fn level_composes_multiplicatively() {
        let c = flat_congestion();
        let m = LatencyModel::new(&c, 0.0);
        let u = user(1.5);
        let level = m.level_ms(&u, ActionType::SelectMail, 0);
        assert!((level - 260.0 * 1.5).abs() < 1e-9);
        // Noise-free sampling returns the level exactly.
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.sample_ms(&u, ActionType::SelectMail, 0, &mut rng), level);
    }

    #[test]
    fn noise_centers_on_the_level() {
        let c = flat_congestion();
        let m = LatencyModel::new(&c, 0.3);
        let u = user(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut samples: Vec<f64> = (0..20_000)
            .map(|_| m.sample_ms(&u, ActionType::Search, 0, &mut rng))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 420.0).abs() / 420.0 < 0.03, "median = {median}");
        assert!(samples.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn congestion_moves_latency() {
        let cfg = CongestionConfig::default();
        let c = CongestionSeries::generate(&cfg, 1440, 3);
        let m = LatencyModel::new(&c, 0.0);
        let u = user(1.0);
        // 13:00 (busiest) vs 03:00 (trough): day must be slower on average.
        let day = m.level_ms(&u, ActionType::SelectMail, 13 * 3_600_000);
        let night = m.level_ms(&u, ActionType::SelectMail, 3 * 3_600_000);
        // Individual minutes are noisy; just require positive values and
        // check the diurnal-mean property on the congestion series itself
        // (covered in congestion tests). Here: sanity.
        assert!(day > 0.0 && night > 0.0);
    }

    #[test]
    #[should_panic(expected = "noise sigma")]
    fn rejects_bad_sigma() {
        let c = flat_congestion();
        let _ = LatencyModel::new(&c, f64::NAN);
    }
}
