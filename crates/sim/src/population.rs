//! User population sampling.
//!
//! Each simulated user carries the static attributes the generative model
//! needs: subscription class, a network-quality factor (per-user latency
//! multiplier, lognormal across the population — the ground truth behind
//! the §3.4 median-latency quartiles), a base activity rate, a timezone
//! offset, and a derived conditioning exponent.

use rand::rngs::StdRng;
use rand::SeedableRng;

use autosens_stats::dist::LogNormal;
use autosens_telemetry::record::{UserClass, UserId};

use crate::config::SimConfig;
use crate::preference::conditioning_exponent;

/// Static attributes of one simulated user.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Stable anonymized id.
    pub id: UserId,
    /// Subscription class.
    pub class: UserClass,
    /// Per-user latency multiplier (median 1.0 across the population).
    pub network_factor: f64,
    /// Mean candidate actions per fully-active hour for this user.
    pub rate_per_active_hour: f64,
    /// Fixed timezone offset in ms (0 in the default scenarios: a single-
    /// region population, like the paper's U.S. slices).
    pub tz_offset_ms: i64,
    /// Preference exponent from conditioning to speed (§3.4).
    pub conditioning_gamma: f64,
}

/// Sample the full population for a configuration.
///
/// Users `0..n_business` are business, the rest consumers. Each user's
/// attributes are drawn from an RNG seeded by `(config seed, user id)`, so
/// the population is stable under any parallel generation order.
pub fn sample_population(cfg: &SimConfig) -> Vec<UserProfile> {
    let network = LogNormal::from_median(1.0, cfg.network_sigma).expect("validated sigma");
    let activity = LogNormal::from_median(cfg.mean_actions_per_active_hour, cfg.activity_sigma)
        .expect("validated rate");
    (0..cfg.n_users())
        .map(|i| {
            let mut rng = user_rng(cfg.seed, i, 0);
            let class = if i < cfg.n_business {
                UserClass::Business
            } else {
                UserClass::Consumer
            };
            let network_factor = network.sample(&mut rng);
            // Round-robin assignment keeps region sizes balanced and
            // deterministic regardless of the RNG stream.
            let tz_hours = cfg.tz_offsets_hours[i as usize % cfg.tz_offsets_hours.len()];
            UserProfile {
                id: UserId(i as u64),
                class,
                network_factor,
                rate_per_active_hour: activity.sample(&mut rng),
                tz_offset_ms: tz_hours * autosens_telemetry::time::MS_PER_HOUR,
                conditioning_gamma: conditioning_exponent(
                    network_factor,
                    cfg.conditioning_strength,
                ),
            }
        })
        .collect()
}

/// Derive the RNG for a (user, stream) pair from the master seed.
///
/// `stream` separates independent uses (0 = profile sampling, 1 = activity
/// generation) so adding draws to one never perturbs the other.
pub fn user_rng(master_seed: u64, user_index: u32, stream: u64) -> StdRng {
    // SplitMix64-style mixing of (seed, user, stream) into one 64-bit state.
    let mut z = master_seed
        ^ (user_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ stream.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scenario;

    fn cfg() -> SimConfig {
        SimConfig::scenario(Scenario::Smoke)
    }

    #[test]
    fn population_sizes_and_classes() {
        let cfg = cfg();
        let pop = sample_population(&cfg);
        assert_eq!(pop.len(), cfg.n_users() as usize);
        let n_business = pop
            .iter()
            .filter(|u| u.class == UserClass::Business)
            .count();
        assert_eq!(n_business, cfg.n_business as usize);
        // Ids are dense and ordered.
        for (i, u) in pop.iter().enumerate() {
            assert_eq!(u.id, UserId(i as u64));
        }
    }

    #[test]
    fn population_is_deterministic() {
        let a = sample_population(&cfg());
        let b = sample_population(&cfg());
        assert_eq!(a, b);
        let mut other = cfg();
        other.seed += 1;
        let c = sample_population(&other);
        assert_ne!(a, c);
    }

    #[test]
    fn network_factors_have_median_near_one_and_spread() {
        let mut cfg = cfg();
        cfg.n_business = 2000;
        cfg.n_consumer = 0;
        let pop = sample_population(&cfg);
        let mut factors: Vec<f64> = pop.iter().map(|u| u.network_factor).collect();
        factors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = factors[factors.len() / 2];
        assert!((median - 1.0).abs() < 0.06, "median = {median}");
        // p90/p10 of a lognormal with sigma 0.15 is e^(2*1.2816*0.15) ~ 1.47.
        let spread = factors[factors.len() * 9 / 10] / factors[factors.len() / 10];
        assert!((spread - 1.47).abs() < 0.15, "p90/p10 = {spread}");
        assert!(factors.iter().all(|f| *f > 0.0));
    }

    #[test]
    fn conditioning_gamma_tracks_network_factor() {
        let pop = sample_population(&cfg());
        for u in &pop {
            let expect = conditioning_exponent(u.network_factor, cfg().conditioning_strength);
            assert_eq!(u.conditioning_gamma, expect);
        }
        // Faster users are more sensitive.
        let fast = pop
            .iter()
            .min_by(|a, b| a.network_factor.partial_cmp(&b.network_factor).unwrap())
            .unwrap();
        let slow = pop
            .iter()
            .max_by(|a, b| a.network_factor.partial_cmp(&b.network_factor).unwrap())
            .unwrap();
        assert!(fast.conditioning_gamma > slow.conditioning_gamma);
    }

    #[test]
    fn rates_are_positive_with_configured_scale() {
        let pop = sample_population(&cfg());
        let mean_rate: f64 =
            pop.iter().map(|u| u.rate_per_active_hour).sum::<f64>() / pop.len() as f64;
        assert!(pop.iter().all(|u| u.rate_per_active_hour > 0.0));
        // Lognormal mean exceeds the median; just sanity-bound it.
        let cfg = cfg();
        assert!(mean_rate > 0.5 * cfg.mean_actions_per_active_hour);
        assert!(mean_rate < 3.0 * cfg.mean_actions_per_active_hour);
    }

    #[test]
    fn tz_offsets_assigned_round_robin() {
        use autosens_telemetry::time::MS_PER_HOUR;
        let mut cfg = cfg();
        cfg.tz_offsets_hours = vec![-8, -5, 0];
        let pop = sample_population(&cfg);
        for (i, u) in pop.iter().enumerate() {
            let expect = cfg.tz_offsets_hours[i % 3] * MS_PER_HOUR;
            assert_eq!(u.tz_offset_ms, expect);
        }
        // Default config keeps everyone at offset 0.
        let pop = sample_population(&cfg0());
        assert!(pop.iter().all(|u| u.tz_offset_ms == 0));
    }

    fn cfg0() -> SimConfig {
        SimConfig::scenario(Scenario::Smoke)
    }

    #[test]
    fn user_rng_streams_are_independent() {
        use rand::Rng;
        let mut a = user_rng(1, 5, 0);
        let mut b = user_rng(1, 5, 1);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
        // Same triple reproduces.
        let mut c = user_rng(1, 5, 0);
        assert_eq!(va, c.gen::<u64>());
    }
}
