//! Ground-truth latency preference curves.
//!
//! The simulator plants a known preference: each candidate action is kept
//! with probability `p(L)^gamma`, where `p` is a per-(action, class) base
//! curve and `gamma` modulates the strength per user (conditioning, §3.4)
//! and per time of day (§3.6). The inference pipeline's recovered normalized
//! preference can then be checked against `p(L)^gamma / p(L_ref)^gamma`.
//!
//! Base curves use an exponential-with-floor form
//! `p(L) = floor + amp * exp(-L / tau)`, which matches the qualitative
//! shapes in the paper's Figure 4: a steep early drop that levels off well
//! above zero (users slow down but do not vanish).

use serde::{Deserialize, Serialize};

use autosens_telemetry::record::{ActionType, UserClass};
use autosens_telemetry::time::DayPeriod;

/// How simulated users sense the latency they react to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensingMode {
    /// Users react to the exact end-to-end latency of the candidate action
    /// (including its idiosyncratic noise). Plants `B/U = p(L)` exactly.
    Oracle,
    /// Users react to the *predictable* component (base x network x
    /// congestion), not the per-action noise — closer to what a human can
    /// actually perceive in advance.
    Level,
    /// Users react to an exponentially-weighted moving average of the
    /// latency they recently *experienced* — the most behaviourally
    /// realistic model, and the hardest test for the estimator.
    Ema {
        /// EMA retention per experienced action (0..1); higher = longer memory.
        beta: f64,
    },
}

/// An exponential-with-floor preference curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefCurve {
    /// Asymptotic preference at very high latency (0..1].
    pub floor: f64,
    /// Amplitude of the decaying component.
    pub amp: f64,
    /// Decay constant in milliseconds.
    pub tau_ms: f64,
}

impl PrefCurve {
    /// Evaluate the raw (un-normalized) preference at a latency.
    /// Clamped into `(0, 1]` so it is always a valid probability.
    pub fn eval(&self, latency_ms: f64) -> f64 {
        let v = self.floor + self.amp * (-latency_ms / self.tau_ms).exp();
        v.clamp(1e-6, 1.0)
    }

    /// Preference at `latency` normalized to a reference latency, with an
    /// exponent modulating sensitivity — the quantity AutoSens estimates.
    pub fn normalized(&self, latency_ms: f64, reference_ms: f64, gamma: f64) -> f64 {
        (self.eval(latency_ms) / self.eval(reference_ms)).powf(gamma)
    }

    /// A completely flat curve (no latency sensitivity).
    pub fn flat() -> PrefCurve {
        PrefCurve {
            floor: 1.0,
            amp: 0.0,
            tau_ms: 1000.0,
        }
    }
}

/// The planted base curve for an (action, class) pair.
///
/// Parameters are tuned so the *normalized* SelectMail/Business curve passes
/// close to the paper's quoted values (≈0.88 at 500 ms, ≈0.68 at 1000 ms,
/// ≈0.61 at 1500 ms relative to 300 ms; Figure 4), Search is much shallower,
/// ComposeSend is nearly flat, and consumers are shallower than business
/// users for the same action (Figure 5).
pub fn base_curve(action: ActionType, class: UserClass) -> PrefCurve {
    use ActionType::*;
    use UserClass::*;
    match (action, class) {
        (SelectMail, Business) => PrefCurve {
            floor: 0.54,
            amp: 0.76,
            tau_ms: 620.0,
        },
        (SelectMail, Consumer) => PrefCurve {
            floor: 0.70,
            amp: 0.48,
            tau_ms: 700.0,
        },
        (SwitchFolder, Business) => PrefCurve {
            floor: 0.60,
            amp: 0.64,
            tau_ms: 680.0,
        },
        (SwitchFolder, Consumer) => PrefCurve {
            floor: 0.74,
            amp: 0.42,
            tau_ms: 740.0,
        },
        (Search, Business) => PrefCurve {
            floor: 0.80,
            amp: 0.30,
            tau_ms: 950.0,
        },
        (Search, Consumer) => PrefCurve {
            floor: 0.85,
            amp: 0.22,
            tau_ms: 1000.0,
        },
        (ComposeSend, _) => PrefCurve {
            floor: 0.965,
            amp: 0.05,
            tau_ms: 900.0,
        },
        (Other, _) => PrefCurve {
            floor: 0.75,
            amp: 0.35,
            tau_ms: 800.0,
        },
    }
}

/// The sensitivity exponent for a day period, from the configured
/// `[morning, afternoon, evening, night]` exponents.
pub fn period_exponent(exponents: &[f64; 4], period: DayPeriod) -> f64 {
    match period {
        DayPeriod::Morning8to14 => exponents[0],
        DayPeriod::Afternoon14to20 => exponents[1],
        DayPeriod::Evening20to2 => exponents[2],
        DayPeriod::Night2to8 => exponents[3],
    }
}

/// The conditioning exponent for a user with the given network quality
/// factor (median-latency multiplier): fast users (factor < 1) get a larger
/// exponent (more sensitive), slow users a smaller one, clamped to
/// `[0.5, 2.0]` (§3.4 ground truth).
pub fn conditioning_exponent(network_factor: f64, strength: f64) -> f64 {
    assert!(
        network_factor > 0.0 && network_factor.is_finite(),
        "network factor must be positive"
    );
    (1.0 / network_factor).powf(strength).clamp(0.5, 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_decreasing_and_bounded() {
        let c = base_curve(ActionType::SelectMail, UserClass::Business);
        let mut prev = f64::INFINITY;
        for l in (0..3000).step_by(50) {
            let v = c.eval(l as f64);
            assert!(v > 0.0 && v <= 1.0);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn selectmail_business_matches_paper_anchor_points() {
        // Figure 4 quotes normalized preference ~0.88 / 0.68 / 0.61 at
        // 500 / 1000 / 1500 ms (ref 300 ms); §3.5 quotes ~0.59 at 2000 ms.
        let c = base_curve(ActionType::SelectMail, UserClass::Business);
        let n = |l: f64| c.normalized(l, 300.0, 1.0);
        assert!((n(500.0) - 0.88).abs() < 0.03, "n(500) = {}", n(500.0));
        assert!((n(1000.0) - 0.68).abs() < 0.04, "n(1000) = {}", n(1000.0));
        assert!((n(1500.0) - 0.61).abs() < 0.04, "n(1500) = {}", n(1500.0));
        assert!((n(2000.0) - 0.59).abs() < 0.04, "n(2000) = {}", n(2000.0));
    }

    #[test]
    fn action_ordering_matches_figure4() {
        // At a fixed high latency, normalized preference orders:
        // SelectMail < SwitchFolder < Search < ComposeSend.
        let l = 1500.0;
        let n = |a: ActionType| base_curve(a, UserClass::Business).normalized(l, 300.0, 1.0);
        assert!(n(ActionType::SelectMail) < n(ActionType::SwitchFolder));
        assert!(n(ActionType::SwitchFolder) < n(ActionType::Search));
        assert!(n(ActionType::Search) < n(ActionType::ComposeSend));
        // ComposeSend is nearly flat.
        assert!(n(ActionType::ComposeSend) > 0.93);
    }

    #[test]
    fn business_is_steeper_than_consumer() {
        for action in [
            ActionType::SelectMail,
            ActionType::SwitchFolder,
            ActionType::Search,
        ] {
            let b = base_curve(action, UserClass::Business).normalized(1500.0, 300.0, 1.0);
            let c = base_curve(action, UserClass::Consumer).normalized(1500.0, 300.0, 1.0);
            assert!(b < c, "{action:?}: business {b} vs consumer {c}");
        }
    }

    #[test]
    fn normalized_is_one_at_reference_and_gamma_steepens() {
        let c = base_curve(ActionType::SelectMail, UserClass::Business);
        assert!((c.normalized(300.0, 300.0, 1.3) - 1.0).abs() < 1e-12);
        let mild = c.normalized(1200.0, 300.0, 0.5);
        let steep = c.normalized(1200.0, 300.0, 2.0);
        assert!(steep < mild);
    }

    #[test]
    fn flat_curve_has_no_preference() {
        let f = PrefCurve::flat();
        for l in [0.0, 500.0, 3000.0] {
            assert_eq!(f.eval(l), 1.0);
            assert_eq!(f.normalized(l, 300.0, 1.7), 1.0);
        }
    }

    #[test]
    fn eval_clamps_into_valid_probability() {
        // A pathological curve summing above 1 still yields a probability.
        let c = PrefCurve {
            floor: 0.9,
            amp: 0.9,
            tau_ms: 500.0,
        };
        assert_eq!(c.eval(0.0), 1.0);
        let c = PrefCurve {
            floor: 0.0,
            amp: 0.0,
            tau_ms: 500.0,
        };
        assert!(c.eval(100.0) > 0.0);
    }

    #[test]
    fn period_exponents_map_in_order() {
        let e = [1.2, 1.0, 0.8, 0.6];
        assert_eq!(period_exponent(&e, DayPeriod::Morning8to14), 1.2);
        assert_eq!(period_exponent(&e, DayPeriod::Afternoon14to20), 1.0);
        assert_eq!(period_exponent(&e, DayPeriod::Evening20to2), 0.8);
        assert_eq!(period_exponent(&e, DayPeriod::Night2to8), 0.6);
    }

    #[test]
    fn conditioning_exponent_orders_users() {
        let fast = conditioning_exponent(0.6, 0.8);
        let avg = conditioning_exponent(1.0, 0.8);
        let slow = conditioning_exponent(1.8, 0.8);
        assert!(fast > avg && avg > slow, "{fast} {avg} {slow}");
        assert_eq!(avg, 1.0);
        // Clamping.
        assert_eq!(conditioning_exponent(0.01, 1.0), 2.0);
        assert_eq!(conditioning_exponent(100.0, 1.0), 0.5);
        // Strength zero disables conditioning.
        assert_eq!(conditioning_exponent(0.5, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn conditioning_rejects_bad_factor() {
        conditioning_exponent(0.0, 1.0);
    }
}
