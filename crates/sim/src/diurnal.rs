//! Hour-of-day activity profiles — the ground truth behind the paper's
//! time-based activity factor `α` (§2.4.1, Figure 8).
//!
//! A profile maps local hour (0..24) to a relative activity level in
//! `(0, 1]`. Business users peak during working hours and largely vanish on
//! weekends; consumers have a flatter curve with an evening bump and remain
//! active on weekends.

use autosens_telemetry::record::UserClass;
use autosens_telemetry::time::DayPeriod;

/// Business-hours activity profile, peak normalized to 1.0.
const BUSINESS_PROFILE: [f64; 24] = [
    0.06, 0.05, 0.04, 0.04, 0.05, 0.07, // 0-5: night trough
    0.10, 0.22, 0.75, 0.95, 1.00, 0.98, // 6-11: morning ramp to peak
    0.90, 0.95, 1.00, 0.95, 0.85, 0.70, // 12-17: working afternoon
    0.45, 0.30, 0.22, 0.16, 0.12, 0.08, // 18-23: evening decline
];

/// Consumer activity profile: flatter, with an evening bump.
const CONSUMER_PROFILE: [f64; 24] = [
    0.12, 0.08, 0.06, 0.05, 0.06, 0.09, // 0-5
    0.15, 0.30, 0.45, 0.55, 0.60, 0.62, // 6-11
    0.65, 0.62, 0.60, 0.62, 0.68, 0.78, // 12-17
    0.90, 1.00, 0.95, 0.75, 0.45, 0.22, // 18-23: evening peak
];

/// Weekend multiplier per class.
fn weekend_factor(class: UserClass) -> f64 {
    match class {
        UserClass::Business => 0.25,
        UserClass::Consumer => 0.90,
    }
}

/// Relative activity level for a class at a local hour (0..24) and weekday
/// flag. Always strictly positive so nighttime data exists (as it does in
/// any global service).
pub fn activity_level(class: UserClass, hour: u8, weekend: bool) -> f64 {
    assert!(hour < 24, "hour {hour} out of range");
    let base = match class {
        UserClass::Business => BUSINESS_PROFILE[hour as usize],
        UserClass::Consumer => CONSUMER_PROFILE[hour as usize],
    };
    if weekend {
        base * weekend_factor(class)
    } else {
        base
    }
}

/// Mean activity level of a class over a 6-hour day period (weekdays).
///
/// This is the ground-truth counterpart of the per-period activity factor
/// `α` the pipeline estimates for Figure 8 (up to normalization by the
/// reference period).
pub fn period_mean_activity(class: UserClass, period: DayPeriod) -> f64 {
    let hours: [u8; 6] = match period {
        DayPeriod::Morning8to14 => [8, 9, 10, 11, 12, 13],
        DayPeriod::Afternoon14to20 => [14, 15, 16, 17, 18, 19],
        DayPeriod::Evening20to2 => [20, 21, 22, 23, 0, 1],
        DayPeriod::Night2to8 => [2, 3, 4, 5, 6, 7],
    };
    hours
        .iter()
        .map(|&h| activity_level(class, h, false))
        .sum::<f64>()
        / 6.0
}

/// Ground-truth `α` for a period relative to the paper's reference period
/// (8am–2pm), weekdays.
pub fn true_alpha(class: UserClass, period: DayPeriod) -> f64 {
    period_mean_activity(class, period) / period_mean_activity(class, DayPeriod::Morning8to14)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_positive_and_peak_at_one() {
        for h in 0..24 {
            for class in UserClass::all() {
                for weekend in [false, true] {
                    let a = activity_level(class, h, weekend);
                    assert!(a > 0.0 && a <= 1.0, "{class:?} h{h} weekend={weekend}: {a}");
                }
            }
        }
        let peak_b = (0..24)
            .map(|h| activity_level(UserClass::Business, h, false))
            .fold(0.0, f64::max);
        assert_eq!(peak_b, 1.0);
        let peak_c = (0..24)
            .map(|h| activity_level(UserClass::Consumer, h, false))
            .fold(0.0, f64::max);
        assert_eq!(peak_c, 1.0);
    }

    #[test]
    fn business_day_night_contrast_is_strong() {
        let day = activity_level(UserClass::Business, 10, false);
        let night = activity_level(UserClass::Business, 3, false);
        assert!(day / night > 10.0, "day {day} night {night}");
    }

    #[test]
    fn consumers_peak_in_the_evening() {
        let evening = activity_level(UserClass::Consumer, 19, false);
        let morning = activity_level(UserClass::Consumer, 9, false);
        assert!(evening > morning);
    }

    #[test]
    fn weekends_suppress_business_more_than_consumer() {
        let b_ratio = activity_level(UserClass::Business, 10, true)
            / activity_level(UserClass::Business, 10, false);
        let c_ratio = activity_level(UserClass::Consumer, 10, true)
            / activity_level(UserClass::Consumer, 10, false);
        assert!(b_ratio < 0.3);
        assert!(c_ratio > 0.8);
    }

    #[test]
    fn true_alpha_reference_is_one_and_night_is_lowest() {
        for class in UserClass::all() {
            assert!((true_alpha(class, DayPeriod::Morning8to14) - 1.0).abs() < 1e-12);
            let night = true_alpha(class, DayPeriod::Night2to8);
            for p in DayPeriod::all() {
                assert!(true_alpha(class, p) >= night - 1e-12, "{class:?} {p:?}");
            }
            assert!(night < 0.5, "{class:?} night alpha {night}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_hour_panics() {
        activity_level(UserClass::Business, 24, false);
    }
}
