//! The gateway: accepts agent connections, routes batches to per-tenant
//! engines, and checkpoints the fleet on COMMIT.
//!
//! One [`Gateway`] wraps a shared [`Registry`]. Each accepted connection
//! gets its own OS thread speaking the frame protocol (see
//! [`crate::frame`]); tenants are lock-striped in the registry, so
//! connections feeding different tenants ingest concurrently. A COMMIT
//! frame is acknowledged only after [`Registry::checkpoint_all`] has
//! renamed the new generation into place, which is the durability
//! contract agents rely on.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use autosens_obs::Recorder;
use autosens_stream::StreamConfig;

use crate::error::ServeError;
use crate::frame::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
use crate::registry::Registry;

/// Gateway construction parameters.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Streaming configuration every tenant engine is created under.
    pub stream: StreamConfig,
    /// Per-tenant intake queue capacity.
    pub ingest_capacity: usize,
    /// Where COMMIT checkpoints the fleet; `None` makes COMMIT a no-op
    /// (still acknowledged, nothing durable).
    pub checkpoint_dir: Option<PathBuf>,
    /// Whether to restore from `checkpoint_dir` when a manifest exists.
    pub resume: bool,
    /// Worker threads for fleet-wide snapshot fan-out.
    pub threads: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            stream: StreamConfig::default(),
            ingest_capacity: 65_536,
            checkpoint_dir: None,
            resume: false,
            threads: 1,
        }
    }
}

struct GatewayInner {
    registry: Registry,
    threads: usize,
    checkpoint_dir: Option<PathBuf>,
    recorder: Recorder,
    stop: AtomicBool,
}

/// The multi-tenant ingest gateway. See the module docs.
#[derive(Clone)]
pub struct Gateway {
    inner: Arc<GatewayInner>,
}

impl Gateway {
    /// Build a gateway, restoring the fleet from the checkpoint
    /// directory when `resume` is set and a manifest exists.
    pub fn new(config: GatewayConfig, recorder: Recorder) -> Result<Gateway, ServeError> {
        let registry = match (&config.checkpoint_dir, config.resume) {
            (Some(dir), true) if Registry::can_restore(dir) => Registry::restore(
                dir,
                config.stream.clone(),
                config.ingest_capacity,
                recorder.clone(),
            )?,
            _ => Registry::new(
                config.stream.clone(),
                config.ingest_capacity,
                recorder.clone(),
            ),
        };
        Ok(Gateway {
            inner: Arc::new(GatewayInner {
                registry,
                threads: config.threads.max(1),
                checkpoint_dir: config.checkpoint_dir,
                recorder,
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// The shared tenant registry (the query plane reads through this).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Worker threads for fleet-wide snapshot fan-out.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// The recorder the gateway emits metrics and spans into.
    pub fn recorder(&self) -> &Recorder {
        &self.inner.recorder
    }

    /// Ask accept loops to exit after their next wakeup. Pair with one
    /// dummy connection to the listen address to unblock a blocking
    /// `accept` immediately (see [`Gateway::serve_tcp`]'s docs).
    pub fn request_stop(&self) {
        self.inner.stop.store(true, Ordering::Release);
    }

    /// Whether a stop has been requested.
    pub fn stopping(&self) -> bool {
        self.inner.stop.load(Ordering::Acquire)
    }

    /// Checkpoint every tenant now (same path COMMIT takes). No-op
    /// without a checkpoint directory; returns the generation written.
    pub fn checkpoint_now(&self) -> Result<Option<u64>, ServeError> {
        match &self.inner.checkpoint_dir {
            Some(dir) => self.inner.registry.checkpoint_all(dir).map(Some),
            None => Ok(None),
        }
    }

    /// Accept agent connections until [`Gateway::request_stop`]. Each
    /// connection runs on its own thread; the accept loop itself blocks,
    /// so a stopper should dial the address once after requesting stop
    /// to unblock it.
    pub fn serve_tcp(&self, listener: TcpListener) -> Result<(), ServeError> {
        loop {
            let (stream, _) = listener.accept()?;
            if self.stopping() {
                return Ok(());
            }
            let gw = self.clone();
            std::thread::spawn(move || {
                let _ = gw.handle_tcp(stream);
            });
        }
    }

    /// Serve one TCP connection (nodelay so small ACK frames are not
    /// coalesced behind batch reads).
    pub fn handle_tcp(&self, stream: TcpStream) -> Result<(), ServeError> {
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        self.handle_connection(reader, writer)
    }

    /// Accept connections on a unix socket until stop is requested.
    #[cfg(unix)]
    pub fn serve_unix(&self, listener: std::os::unix::net::UnixListener) -> Result<(), ServeError> {
        loop {
            let (stream, _) = listener.accept()?;
            if self.stopping() {
                return Ok(());
            }
            let gw = self.clone();
            std::thread::spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(s) => BufReader::new(s),
                    Err(_) => return,
                };
                let _ = gw.handle_connection(reader, BufWriter::new(stream));
            });
        }
    }

    /// The framed request/response loop for one agent connection. Every
    /// HELLO, BATCH, and COMMIT is acknowledged with the connection's
    /// cumulative accepted-record count; a protocol or ingest error is
    /// reported in an ERROR frame and closes the connection.
    pub fn handle_connection<R: Read, W: Write>(
        &self,
        mut reader: R,
        mut writer: W,
    ) -> Result<(), ServeError> {
        let metrics = self.inner.recorder.metrics();
        metrics.counter("autosens_serve_connections_total").inc();
        let mut accepted: u64 = 0;
        loop {
            let frame = match read_frame(&mut reader) {
                Ok(Some(f)) => f,
                Ok(None) => return Ok(()),
                Err(e) => {
                    let _ = write_frame(
                        &mut writer,
                        &Frame::Error {
                            message: e.to_string(),
                        },
                    );
                    return Err(e);
                }
            };
            metrics.counter("autosens_serve_frames_total").inc();
            let reply = match frame {
                Frame::Hello { version } if version == PROTOCOL_VERSION => {
                    Frame::Ack { records: accepted }
                }
                Frame::Hello { version } => Frame::Error {
                    message: format!(
                        "protocol version {version} unsupported (gateway speaks {PROTOCOL_VERSION})"
                    ),
                },
                Frame::Batch { tenant, records } => {
                    metrics.counter("autosens_serve_batches_total").inc();
                    match self.inner.registry.ingest(&tenant, &records) {
                        Ok(n) => {
                            accepted += n;
                            Frame::Ack { records: accepted }
                        }
                        Err(e) => Frame::Error {
                            message: e.to_string(),
                        },
                    }
                }
                Frame::Commit => {
                    metrics.counter("autosens_serve_commits_total").inc();
                    match self.checkpoint_now() {
                        Ok(_) => Frame::Ack { records: accepted },
                        Err(e) => Frame::Error {
                            message: e.to_string(),
                        },
                    }
                }
                Frame::Ack { .. } | Frame::Error { .. } => Frame::Error {
                    message: "gateway-only frame received from agent".into(),
                },
            };
            let fatal = matches!(reply, Frame::Error { .. });
            write_frame(&mut writer, &reply)?;
            if fatal {
                return Err(ServeError::Protocol(match reply {
                    Frame::Error { message } => message,
                    _ => unreachable!(),
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
    use autosens_telemetry::time::SimTime;

    use crate::tenant::TenantKey;

    fn rec(t: i64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(3),
            class: UserClass::Consumer,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    /// Drive the connection handler over in-memory pipes (no sockets).
    fn roundtrip(gw: &Gateway, frames: &[Frame]) -> Vec<Frame> {
        let mut wire = Vec::new();
        for f in frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut replies_raw = Vec::new();
        let _ = gw.handle_connection(&wire[..], &mut replies_raw);
        let mut replies = Vec::new();
        let mut r = &replies_raw[..];
        while let Ok(Some(f)) = read_frame(&mut r) {
            replies.push(f);
        }
        replies
    }

    #[test]
    fn acks_carry_cumulative_counts() {
        let gw = Gateway::new(GatewayConfig::default(), Recorder::disabled()).unwrap();
        let tenant = TenantKey::new("mail", "eu").unwrap();
        let replies = roundtrip(
            &gw,
            &[
                Frame::Hello {
                    version: PROTOCOL_VERSION,
                },
                Frame::Batch {
                    tenant: tenant.clone(),
                    records: vec![rec(0, 10.0), rec(1, 11.0)],
                },
                Frame::Batch {
                    tenant: tenant.clone(),
                    records: vec![rec(2, 12.0)],
                },
                Frame::Commit,
            ],
        );
        assert_eq!(
            replies,
            vec![
                Frame::Ack { records: 0 },
                Frame::Ack { records: 2 },
                Frame::Ack { records: 3 },
                Frame::Ack { records: 3 },
            ]
        );
        assert_eq!(gw.registry().len(), 1);
    }

    #[test]
    fn wrong_version_gets_an_error() {
        let gw = Gateway::new(GatewayConfig::default(), Recorder::disabled()).unwrap();
        let replies = roundtrip(&gw, &[Frame::Hello { version: 9999 }]);
        assert!(matches!(replies.as_slice(), [Frame::Error { .. }]));
    }

    #[test]
    fn agent_sending_ack_is_rejected() {
        let gw = Gateway::new(GatewayConfig::default(), Recorder::disabled()).unwrap();
        let replies = roundtrip(&gw, &[Frame::Ack { records: 1 }]);
        assert!(matches!(replies.as_slice(), [Frame::Error { .. }]));
    }
}
