//! The push agent: batches records for one tenant and ships them to a
//! gateway with connect retry/backoff.
//!
//! The agent is deliberately dumb: it owns no analysis state, just a
//! buffer and a connection. Records accumulate into batches of
//! `batch_size`; every BATCH waits for its ACK (the protocol is
//! stop-and-wait — the per-batch round trip amortizes over thousands of
//! records, and it keeps the agent's durability accounting exact).
//! [`Agent::commit`] flushes, asks the gateway to checkpoint, and
//! returns only after the COMMIT ACK, i.e. after the records are
//! durable on the gateway's disk.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use autosens_telemetry::record::ActionRecord;

use crate::error::ServeError;
use crate::frame::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
use crate::tenant::TenantKey;

/// Agent construction parameters.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Gateway address: `host:port` for TCP, or a filesystem path
    /// (anything containing `/`) for a unix socket.
    pub addr: String,
    /// The tenant every pushed record belongs to.
    pub tenant: TenantKey,
    /// Records per BATCH frame.
    pub batch_size: usize,
    /// Connect attempts before giving up.
    pub retries: u32,
    /// Base backoff between connect attempts (doubles per retry).
    pub backoff_ms: u64,
}

impl AgentConfig {
    /// Defaults for `tenant` at `addr`: 4096-record batches, 5 connect
    /// attempts, 100 ms base backoff.
    pub fn new(addr: impl Into<String>, tenant: TenantKey) -> AgentConfig {
        AgentConfig {
            addr: addr.into(),
            tenant,
            batch_size: 4096,
            retries: 5,
            backoff_ms: 100,
        }
    }
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

fn dial(addr: &str) -> Result<Conn, ServeError> {
    if addr.contains('/') {
        #[cfg(unix)]
        {
            return Ok(Conn::Unix(std::os::unix::net::UnixStream::connect(addr)?));
        }
        #[cfg(not(unix))]
        {
            return Err(ServeError::Protocol(format!(
                "unix socket address {addr:?} on a non-unix platform"
            )));
        }
    }
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    Ok(Conn::Tcp(stream))
}

/// A connected push agent. See the module docs.
pub struct Agent {
    config: AgentConfig,
    conn: Conn,
    pending: Vec<ActionRecord>,
    sent: u64,
    acked: u64,
}

impl Agent {
    /// Dial the gateway (with retry/backoff) and complete the HELLO
    /// handshake.
    pub fn connect(config: AgentConfig) -> Result<Agent, ServeError> {
        config.tenant.validate()?;
        if config.batch_size == 0 {
            return Err(ServeError::Protocol("batch_size must be > 0".into()));
        }
        let mut conn = None;
        let mut backoff = config.backoff_ms;
        let mut last_err: Option<ServeError> = None;
        for attempt in 0..=config.retries {
            match dial(&config.addr) {
                Ok(c) => {
                    conn = Some(c);
                    break;
                }
                Err(e) => {
                    last_err = Some(e);
                    if attempt < config.retries {
                        std::thread::sleep(Duration::from_millis(backoff));
                        backoff = backoff.saturating_mul(2);
                    }
                }
            }
        }
        let conn = match conn {
            Some(c) => c,
            None => {
                return Err(last_err.unwrap_or_else(|| {
                    ServeError::Protocol(format!("could not reach {}", config.addr))
                }))
            }
        };
        let mut agent = Agent {
            config,
            conn,
            pending: Vec::new(),
            sent: 0,
            acked: 0,
        };
        write_frame(
            &mut agent.conn,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            },
        )?;
        agent.await_ack()?;
        Ok(agent)
    }

    /// Records acknowledged by the gateway so far.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Buffer one record, shipping a batch when the buffer fills.
    pub fn push(&mut self, record: ActionRecord) -> Result<(), ServeError> {
        self.pending.push(record);
        if self.pending.len() >= self.config.batch_size {
            self.flush()?;
        }
        Ok(())
    }

    /// Ship any buffered records and wait for the ACK.
    pub fn flush(&mut self) -> Result<(), ServeError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let records = std::mem::take(&mut self.pending);
        self.sent += records.len() as u64;
        let frame = Frame::Batch {
            tenant: self.config.tenant.clone(),
            records,
        };
        write_frame(&mut self.conn, &frame)?;
        self.await_ack()?;
        Ok(())
    }

    /// Flush, then ask the gateway to checkpoint durably. Returns the
    /// total acknowledged record count once the COMMIT ACK arrives.
    pub fn commit(&mut self) -> Result<u64, ServeError> {
        self.flush()?;
        write_frame(&mut self.conn, &Frame::Commit)?;
        self.await_ack()?;
        Ok(self.acked)
    }

    /// Read one gateway reply; an ERROR frame or an ACK that does not
    /// cover everything sent is a protocol failure.
    fn await_ack(&mut self) -> Result<(), ServeError> {
        match read_frame(&mut self.conn)? {
            Some(Frame::Ack { records }) => {
                if records < self.sent {
                    return Err(ServeError::Protocol(format!(
                        "gateway acknowledged {records} of {} records sent",
                        self.sent
                    )));
                }
                self.acked = records;
                Ok(())
            }
            Some(Frame::Error { message }) => Err(ServeError::Protocol(message)),
            Some(other) => Err(ServeError::Protocol(format!("expected ACK, got {other:?}"))),
            None => Err(ServeError::Protocol(
                "gateway closed the connection mid-handshake".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_gives_up_after_retries() {
        // A port from the discard range that nothing listens on.
        let config = AgentConfig {
            addr: "127.0.0.1:9".into(),
            tenant: TenantKey::new("svc", "r0").unwrap(),
            batch_size: 16,
            retries: 1,
            backoff_ms: 1,
        };
        assert!(Agent::connect(config).is_err());
    }

    #[test]
    fn rejects_zero_batch_size() {
        let config = AgentConfig {
            addr: "127.0.0.1:9".into(),
            tenant: TenantKey::new("svc", "r0").unwrap(),
            batch_size: 0,
            retries: 0,
            backoff_ms: 1,
        };
        assert!(Agent::connect(config).is_err());
    }
}
