//! Tenant identity: one `service × region` pair owns one streaming engine.

use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// Maximum label length accepted on the wire (services and regions are
/// short operational names, not payloads).
pub const MAX_LABEL_LEN: usize = 128;

/// The routing key of one tenant.
///
/// Labels are restricted to `[A-Za-z0-9._-]` so a key is safe to embed in
/// checkpoint file names, HTTP paths, and metric labels without escaping.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantKey {
    /// The service whose telemetry this is.
    pub service: String,
    /// The region (or deployment) the telemetry came from.
    pub region: String,
}

/// Whether a label is acceptable in a tenant key.
pub fn valid_label(label: &str) -> bool {
    !label.is_empty()
        && label.len() <= MAX_LABEL_LEN
        && label
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

impl TenantKey {
    /// Build a validated key.
    pub fn new(service: impl Into<String>, region: impl Into<String>) -> Result<Self, ServeError> {
        let key = TenantKey {
            service: service.into(),
            region: region.into(),
        };
        key.validate()?;
        Ok(key)
    }

    /// Reject empty or path/metric-unsafe labels.
    pub fn validate(&self) -> Result<(), ServeError> {
        for (what, label) in [("service", &self.service), ("region", &self.region)] {
            if !valid_label(label) {
                return Err(ServeError::BadTenant(format!(
                    "{what} {label:?} must be 1..={MAX_LABEL_LEN} chars of [A-Za-z0-9._-]"
                )));
            }
        }
        Ok(())
    }

    /// The `service/region` display form (also the HTTP path form).
    pub fn label(&self) -> String {
        format!("{}/{}", self.service, self.region)
    }

    /// The checkpoint file stem (`service__region`; labels cannot contain
    /// `_` doubled ambiguity because the pair is re-read from the
    /// manifest, never parsed back out of the file name).
    pub fn file_stem(&self) -> String {
        format!("{}__{}", self.service, self.region)
    }

    /// Which of `n` registry shards owns this key (FNV-1a over both
    /// labels — stable across runs, so shard assignment is deterministic).
    pub fn shard(&self, n: usize) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .service
            .as_bytes()
            .iter()
            .chain([0u8].iter())
            .chain(self.region.as_bytes())
        {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % n.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_labels() {
        assert!(TenantKey::new("mail", "eu-west1").is_ok());
        assert!(TenantKey::new("svc.a_b-c", "r0").is_ok());
        assert!(TenantKey::new("", "r").is_err());
        assert!(TenantKey::new("a/b", "r").is_err());
        assert!(TenantKey::new("a b", "r").is_err());
        assert!(TenantKey::new("a".repeat(MAX_LABEL_LEN + 1), "r").is_err());
    }

    #[test]
    fn shard_is_stable_and_in_range() {
        let k = TenantKey::new("mail", "eu-west1").unwrap();
        assert_eq!(k.shard(16), k.shard(16));
        for n in 1..32 {
            assert!(k.shard(n) < n);
        }
    }

    #[test]
    fn label_forms() {
        let k = TenantKey::new("mail", "eu").unwrap();
        assert_eq!(k.label(), "mail/eu");
        assert_eq!(k.file_stem(), "mail__eu");
    }
}
