//! Sharded per-tenant engine registry with atomic fleet checkpointing.
//!
//! The gateway owns one [`Registry`]. Each tenant (`service × region`,
//! see [`TenantKey`]) maps to its own [`StreamEngine`] + [`Ingestor`]
//! pair, so backpressure, watermarking, dedup, and loss counting all
//! happen per tenant with the exact machinery the single-tenant `watch`
//! path uses. Tenants live in a fixed number of hash shards so
//! concurrent agent connections touching different tenants rarely
//! contend on a lock.
//!
//! # Checkpoint directory layout
//!
//! The whole fleet checkpoints atomically under one directory:
//!
//! ```text
//! <dir>/MANIFEST.json          { version, generation, tenants: [...] }
//! <dir>/gen-<N>/<service>__<region>.ckpt.json
//! ```
//!
//! Checkpoint passes are serialized on a dedicated lock. A pass writes
//! `gen-<N+1>.tmp/` (each tenant file fsynced before its rename), renames
//! it to `gen-<N+1>/`, then fsyncs and tmp+renames the manifest to point
//! at it, and only then deletes the previous generation. A crash at any
//! point leaves either the old generation (manifest untouched) or the new
//! one (manifest renamed) fully intact — never a mix. Directory-entry
//! fsyncs are best-effort, so on filesystems that refuse them durability
//! of the *rename itself* is process-kill-safe rather than
//! power-loss-safe; file contents are always fsynced.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use autosens_core::pipeline::AnalysisReport;
use autosens_obs::Recorder;
use autosens_stats::binning::OutOfRange;
use autosens_stats::Binner;
use autosens_stream::{
    save_json, Checkpoint, Ingestor, Offer, OverflowPolicy, StatusDocument, StreamConfig,
    StreamEngine,
};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::ActionRecord;

use crate::error::ServeError;
use crate::tenant::TenantKey;

/// Fixed registry shard count (lock striping, not data partitioning —
/// tenant state never moves between shards).
pub const REGISTRY_SHARDS: usize = 16;

/// Manifest schema version.
pub const MANIFEST_VERSION: u32 = 1;

/// One tenant's streaming state.
pub struct Tenant {
    /// The tenant's key (also recorded in the manifest).
    pub key: TenantKey,
    /// The per-tenant streaming engine.
    pub engine: StreamEngine,
    /// The per-tenant bounded intake queue (Block policy: the gateway
    /// drains inline when an offer reports full, so nothing sheds).
    pub ingestor: Ingestor,
    /// Records routed to this tenant since creation or restore.
    pub records: u64,
    /// The last serialized checkpoint, keyed by the engine's intake event
    /// counter: a checkpoint pass reuses these bytes verbatim while the
    /// tenant has seen no new events (the engine's snapshot dirty key).
    pub(crate) ckpt_cache: Option<(u64, String)>,
}

/// Wall-clock and reuse accounting for the most recent fleet-wide
/// snapshot pass ([`Registry::snapshot_all`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetSnapshotStats {
    /// Wall-clock duration of the pass, ms.
    pub wall_ms: f64,
    /// Tenants covered.
    pub tenants: usize,
    /// Tenants whose report was served from the engine snapshot cache.
    pub reused: usize,
    /// Tenants whose report was recomputed (dirty since last snapshot).
    pub computed: usize,
}

/// The fleet manifest: which generation is live and which tenants it
/// holds. The `(service, region)` pair is re-read from here on restore —
/// file names are never parsed back into keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// The live generation number (`gen-<N>/` holds the files).
    pub generation: u64,
    /// Every checkpointed tenant, sorted by key.
    pub tenants: Vec<ManifestEntry>,
}

/// One tenant's entry in the [`Manifest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Tenant service label.
    pub service: String,
    /// Tenant region label.
    pub region: String,
    /// Checkpoint file name inside the generation directory.
    pub file: String,
}

/// The sharded tenant registry. See the module docs.
pub struct Registry {
    shards: Vec<Mutex<HashMap<TenantKey, Arc<Mutex<Tenant>>>>>,
    config: StreamConfig,
    ingest_capacity: usize,
    recorder: Recorder,
    generation: AtomicU64,
    /// Serializes checkpoint passes: two concurrent `checkpoint_all`
    /// calls (e.g. two agent COMMITs) would otherwise race on the same
    /// `gen-<N+1>` directory and delete each other's work.
    checkpoint_lock: Mutex<()>,
    /// Accounting for the most recent [`Registry::snapshot_all`] pass.
    fleet_stats: Mutex<Option<FleetSnapshotStats>>,
}

impl Registry {
    /// An empty registry creating tenants on demand under `config`.
    pub fn new(config: StreamConfig, ingest_capacity: usize, recorder: Recorder) -> Registry {
        Registry {
            shards: (0..REGISTRY_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            config,
            ingest_capacity: ingest_capacity.max(1),
            recorder,
            generation: AtomicU64::new(0),
            checkpoint_lock: Mutex::new(()),
            fleet_stats: Mutex::new(None),
        }
    }

    /// Accounting for the most recent [`Registry::snapshot_all`] pass,
    /// or `None` before the first pass.
    pub fn last_fleet_snapshot(&self) -> Option<FleetSnapshotStats> {
        *self.fleet_stats.lock()
    }

    /// The streaming configuration new tenants are created under.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The generation the last successful checkpoint wrote (0 = none).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Tenants currently registered.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no tenant exists yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every tenant key, sorted (deterministic iteration order for
    /// checkpoints, fleet summaries, and snapshot fan-out).
    pub fn keys(&self) -> Vec<TenantKey> {
        let mut keys: Vec<TenantKey> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().keys().cloned().collect::<Vec<_>>())
            .collect();
        keys.sort();
        keys
    }

    /// Look up a tenant without creating it.
    pub fn get(&self, key: &TenantKey) -> Option<Arc<Mutex<Tenant>>> {
        self.shards[key.shard(REGISTRY_SHARDS)]
            .lock()
            .get(key)
            .cloned()
    }

    /// Look up or create the tenant for `key`. Every tenant analyzes the
    /// unrestricted slice (label `all`), matching what batch
    /// `analyze` computes per input file.
    pub fn get_or_create(&self, key: &TenantKey) -> Result<Arc<Mutex<Tenant>>, ServeError> {
        key.validate()?;
        let mut shard = self.shards[key.shard(REGISTRY_SHARDS)].lock();
        if let Some(t) = shard.get(key) {
            return Ok(t.clone());
        }
        let engine =
            StreamEngine::with_recorder(self.config.clone(), Slice::all(), self.recorder.clone())?;
        let tenant = Arc::new(Mutex::new(Tenant {
            key: key.clone(),
            engine,
            ingestor: Ingestor::new(
                self.ingest_capacity,
                OverflowPolicy::Block,
                self.recorder.clone(),
            ),
            records: 0,
            ckpt_cache: None,
        }));
        shard.insert(key.clone(), tenant.clone());
        drop(shard);
        self.recorder
            .metrics()
            .gauge("autosens_serve_tenants")
            .set(self.len() as f64);
        Ok(tenant)
    }

    /// Route one batch to its tenant through the bounded queue. A full
    /// queue is drained inline into the engine (explicit backpressure:
    /// the producing connection pays the drain, other tenants proceed).
    pub fn ingest(&self, key: &TenantKey, records: &[ActionRecord]) -> Result<u64, ServeError> {
        let tenant = self.get_or_create(key)?;
        let mut t = tenant.lock();
        for r in records {
            loop {
                match t.ingestor.offer(r.clone()) {
                    Offer::Accepted | Offer::Shed => break,
                    Offer::Full => {
                        let Tenant {
                            ref mut engine,
                            ref ingestor,
                            ..
                        } = *t;
                        ingestor.drain_into(engine)?;
                    }
                }
            }
            t.records += 1;
        }
        self.recorder
            .metrics()
            .counter("autosens_serve_records_total")
            .add(records.len() as u64);
        Ok(records.len() as u64)
    }

    /// Drain the tenant's queue and run a full deterministic snapshot.
    /// Returns the report and the queue depth at snapshot time (always 0
    /// after the drain — reported for the status document contract).
    pub fn snapshot(&self, key: &TenantKey) -> Result<(AnalysisReport, u64), ServeError> {
        let tenant = self
            .get(key)
            .ok_or_else(|| ServeError::BadTenant(format!("unknown tenant {}", key.label())))?;
        let started = Instant::now();
        let mut span = self.recorder.root("serve_snapshot");
        span.field("tenant", key.label());
        let mut t = tenant.lock();
        {
            let Tenant {
                ref mut engine,
                ref ingestor,
                ..
            } = *t;
            ingestor.drain_into(engine)?;
        }
        let report = t.engine.snapshot()?;
        let depth = t.ingestor.queue_depth() as u64;
        drop(t);
        span.finish();
        self.recorder
            .metrics()
            .histogram("autosens_serve_snapshot_ms", &snapshot_binner())
            .observe(started.elapsed().as_secs_f64() * 1e3);
        Ok((report, depth))
    }

    /// Drain, snapshot, and assemble the tenant's [`StatusDocument`]
    /// under one tenant lock, so the report, queue depth, and engine
    /// counters in the document describe a single consistent instant.
    pub fn status_document(&self, key: &TenantKey) -> Result<StatusDocument, ServeError> {
        let tenant = self
            .get(key)
            .ok_or_else(|| ServeError::BadTenant(format!("unknown tenant {}", key.label())))?;
        let started = Instant::now();
        let mut span = self.recorder.root("serve_snapshot");
        span.field("tenant", key.label());
        let mut t = tenant.lock();
        {
            let Tenant {
                ref mut engine,
                ref ingestor,
                ..
            } = *t;
            ingestor.drain_into(engine)?;
        }
        let report = t.engine.snapshot()?;
        let depth = t.ingestor.queue_depth() as u64;
        let doc = StatusDocument::collect(&t.engine, &report, depth);
        drop(t);
        span.finish();
        self.recorder
            .metrics()
            .histogram("autosens_serve_snapshot_ms", &snapshot_binner())
            .observe(started.elapsed().as_secs_f64() * 1e3);
        Ok(doc)
    }

    /// Run a closure against a locked tenant (drained first), e.g. for
    /// status documents or shift history that need `&StreamEngine`.
    pub fn with_tenant<R>(
        &self,
        key: &TenantKey,
        f: impl FnOnce(&mut Tenant) -> R,
    ) -> Result<R, ServeError> {
        let tenant = self
            .get(key)
            .ok_or_else(|| ServeError::BadTenant(format!("unknown tenant {}", key.label())))?;
        let mut t = tenant.lock();
        {
            let Tenant {
                ref mut engine,
                ref ingestor,
                ..
            } = *t;
            ingestor.drain_into(engine)?;
        }
        Ok(f(&mut t))
    }

    /// Snapshot every tenant through the exec scheduler (chunked
    /// fan-out; on a multi-core host shards snapshot concurrently).
    /// Returns `(key, report)` pairs in sorted key order. Tenants with no
    /// new events since their last snapshot are served from the engine's
    /// snapshot cache; the split is recorded in
    /// [`Registry::last_fleet_snapshot`].
    pub fn snapshot_all(
        &self,
        threads: usize,
    ) -> Result<Vec<(TenantKey, AnalysisReport)>, ServeError> {
        let keys = self.keys();
        let n = keys.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let started = Instant::now();
        let chunk = autosens_exec::scan_chunk_size_for(n);
        let (results, _) =
            autosens_exec::run_chunks("serve_snapshot_all", n, chunk, threads, |_, range| {
                range
                    .map(|i| {
                        self.snapshot(&keys[i]).map(|(report, _)| {
                            let reused = self
                                .get(&keys[i])
                                .map(|t| t.lock().engine.last_snapshot_reused())
                                .unwrap_or(false);
                            (keys[i].clone(), report, reused)
                        })
                    })
                    .collect::<Vec<_>>()
            })
            .map_err(|e| ServeError::Checkpoint(format!("snapshot fan-out failed: {e}")))?;
        let flat: Vec<(TenantKey, AnalysisReport, bool)> =
            results.into_iter().flatten().collect::<Result<_, _>>()?;
        let reused = flat.iter().filter(|(_, _, r)| *r).count();
        *self.fleet_stats.lock() = Some(FleetSnapshotStats {
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            tenants: n,
            reused,
            computed: n - reused,
        });
        Ok(flat.into_iter().map(|(k, r, _)| (k, r)).collect())
    }

    /// Checkpoint every tenant atomically into `dir` (see the module
    /// docs for the layout). Returns the new generation number.
    ///
    /// Passes are fully serialized: a second caller (e.g. a COMMIT on
    /// another agent connection) blocks until the first pass has renamed
    /// its generation live, then writes the generation after it.
    pub fn checkpoint_all(&self, dir: &Path) -> Result<u64, ServeError> {
        let _pass = self.checkpoint_lock.lock();
        let mut span = self.recorder.root("serve_checkpoint");
        std::fs::create_dir_all(dir)?;
        let next = self.generation() + 1;
        let tmp = dir.join(format!("gen-{next}.tmp"));
        if tmp.exists() {
            std::fs::remove_dir_all(&tmp)?;
        }
        std::fs::create_dir_all(&tmp)?;
        let keys = self.keys();
        let mut entries = Vec::with_capacity(keys.len());
        for key in &keys {
            let tenant = match self.get(key) {
                Some(t) => t,
                None => continue,
            };
            let mut t = tenant.lock();
            {
                let Tenant {
                    ref mut engine,
                    ref ingestor,
                    ..
                } = *t;
                ingestor.drain_into(engine)?;
            }
            // Serialization is the expensive half of a checkpoint pass;
            // reuse the cached bytes while the tenant has seen no new
            // events (the same dirty key the snapshot cache uses).
            let events = t.engine.events();
            let json = match &t.ckpt_cache {
                Some((cached_events, json)) if *cached_events == events => json.clone(),
                _ => {
                    let json = t
                        .engine
                        .checkpoint(0)
                        .to_json()
                        .map_err(|e| ServeError::Checkpoint(format!("{}: {e}", key.label())))?;
                    t.ckpt_cache = Some((events, json.clone()));
                    json
                }
            };
            drop(t);
            let file = format!("{}.ckpt.json", key.file_stem());
            save_json(&json, &tmp.join(&file))
                .map_err(|e| ServeError::Checkpoint(format!("{}: {e}", key.label())))?;
            entries.push(ManifestEntry {
                service: key.service.clone(),
                region: key.region.clone(),
                file,
            });
        }
        let live = dir.join(format!("gen-{next}"));
        if live.exists() {
            std::fs::remove_dir_all(&live)?;
        }
        std::fs::rename(&tmp, &live)?;
        fsync_dir(dir);
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            generation: next,
            tenants: entries,
        };
        let json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| ServeError::Checkpoint(format!("manifest serialization failed: {e}")))?;
        let manifest_tmp = dir.join("MANIFEST.json.tmp");
        {
            let mut f = std::fs::File::create(&manifest_tmp)?;
            std::io::Write::write_all(&mut f, json.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&manifest_tmp, dir.join("MANIFEST.json"))?;
        fsync_dir(dir);
        let prev = self.generation.swap(next, Ordering::AcqRel);
        if prev > 0 {
            let old = dir.join(format!("gen-{prev}"));
            if old.exists() {
                let _ = std::fs::remove_dir_all(&old);
            }
        }
        span.field("generation", format!("{next}"));
        span.field("tenants", format!("{}", keys.len()));
        span.finish();
        self.recorder
            .metrics()
            .counter("autosens_serve_checkpoints_total")
            .inc();
        Ok(next)
    }

    /// Rebuild a registry from the live generation under `dir`. Every
    /// restored engine is byte-equivalent to the one checkpointed: the
    /// shard records are the state of record and aggregates are rebuilt.
    pub fn restore(
        dir: &Path,
        config: StreamConfig,
        ingest_capacity: usize,
        recorder: Recorder,
    ) -> Result<Registry, ServeError> {
        let manifest_path = dir.join("MANIFEST.json");
        let text = std::fs::read_to_string(&manifest_path)?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| ServeError::Checkpoint(format!("corrupt manifest: {e}")))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(ServeError::Checkpoint(format!(
                "manifest version {} unsupported (expected {MANIFEST_VERSION})",
                manifest.version
            )));
        }
        let registry = Registry::new(config, ingest_capacity, recorder.clone());
        let gen_dir = dir.join(format!("gen-{}", manifest.generation));
        for entry in &manifest.tenants {
            let key = TenantKey::new(entry.service.clone(), entry.region.clone())?;
            let ck = Checkpoint::load(&gen_dir.join(&entry.file))
                .map_err(|e| ServeError::Checkpoint(format!("{}: {e}", key.label())))?;
            let engine = StreamEngine::restore(ck, Slice::all(), recorder.clone())?;
            let tenant = Arc::new(Mutex::new(Tenant {
                key: key.clone(),
                engine,
                ingestor: Ingestor::new(
                    registry.ingest_capacity,
                    OverflowPolicy::Block,
                    recorder.clone(),
                ),
                records: 0,
                ckpt_cache: None,
            }));
            registry.shards[key.shard(REGISTRY_SHARDS)]
                .lock()
                .insert(key, tenant);
        }
        registry
            .generation
            .store(manifest.generation, Ordering::Release);
        recorder
            .metrics()
            .gauge("autosens_serve_tenants")
            .set(registry.len() as f64);
        Ok(registry)
    }

    /// Whether a restorable manifest exists under `dir`.
    pub fn can_restore(dir: &Path) -> bool {
        dir.join("MANIFEST.json").is_file()
    }
}

/// Flush a directory's entry table so a just-completed rename survives
/// power loss, not only process death. Best-effort: opening a directory
/// for fsync is not portable, and on filesystems where it fails the
/// rename is still process-kill-safe.
fn fsync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Latency binner for `autosens_serve_snapshot_ms` (clamped so a slow
/// outlier still lands in the top bin instead of vanishing).
fn snapshot_binner() -> Binner {
    Binner::new(0.0, 10_000.0, 50.0, OutOfRange::Clamp).expect("static binner is valid")
}

/// Checkpoint directory path helper used by the CLI and tests.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST.json")
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
    use autosens_telemetry::time::SimTime;

    fn rec(t: i64, user: u64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(user),
            class: UserClass::Consumer,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    fn small_config() -> StreamConfig {
        StreamConfig {
            shard_ms: 3_600_000,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn creates_and_routes_tenants() {
        let reg = Registry::new(small_config(), 1024, Recorder::disabled());
        let a = TenantKey::new("mail", "eu").unwrap();
        let b = TenantKey::new("mail", "us").unwrap();
        for i in 0..50 {
            reg.ingest(&a, &[rec(i * 60_000, i as u64 % 7, 100.0 + i as f64)])
                .unwrap();
        }
        reg.ingest(&b, &[rec(0, 1, 250.0)]).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.keys(), vec![a.clone(), b.clone()]);
        let events = reg.with_tenant(&a, |t| t.engine.status().events).unwrap();
        assert_eq!(events, 50);
        assert!(reg.snapshot(&TenantKey::new("nope", "x").unwrap()).is_err());
    }

    #[test]
    fn full_queue_drains_inline_instead_of_shedding() {
        let reg = Registry::new(small_config(), 8, Recorder::disabled());
        let key = TenantKey::new("svc", "r0").unwrap();
        let records: Vec<ActionRecord> = (0..100)
            .map(|i| rec(i * 1000, i as u64, 50.0 + i as f64))
            .collect();
        reg.ingest(&key, &records).unwrap();
        let tenant = reg.get(&key).unwrap();
        let t = tenant.lock();
        assert_eq!(t.records, 100);
        assert_eq!(t.ingestor.shed(), 0);
        assert_eq!(
            t.engine.status().events + t.ingestor.queue_depth() as u64,
            100
        );
    }

    #[test]
    fn checkpoint_restore_round_trips_every_tenant() {
        let dir = std::env::temp_dir().join(format!("autosens-serve-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Registry::new(small_config(), 1024, Recorder::disabled());
        let keys: Vec<TenantKey> = (0..5)
            .map(|i| TenantKey::new("svc", format!("r{i}")).unwrap())
            .collect();
        for (ti, key) in keys.iter().enumerate() {
            let records: Vec<ActionRecord> = (0..200)
                .map(|i| {
                    rec(
                        i * 30_000,
                        (i % 11) as u64,
                        80.0 + (ti * 37 + i as usize) as f64,
                    )
                })
                .collect();
            reg.ingest(key, &records).unwrap();
        }
        let gen = reg.checkpoint_all(&dir).unwrap();
        assert_eq!(gen, 1);
        assert!(Registry::can_restore(&dir));

        // A second pass bumps the generation and removes the old one.
        let gen2 = reg.checkpoint_all(&dir).unwrap();
        assert_eq!(gen2, 2);
        assert!(!dir.join("gen-1").exists());
        assert!(dir.join("gen-2").exists());

        let restored = Registry::restore(&dir, small_config(), 1024, Recorder::disabled()).unwrap();
        assert_eq!(restored.generation(), 2);
        assert_eq!(restored.keys(), keys);
        for key in &keys {
            // A re-serialized checkpoint is byte-identical: the shard
            // records are the state of record and survive the round trip.
            let orig = reg
                .with_tenant(key, |t| t.engine.checkpoint(0).to_json().unwrap())
                .unwrap();
            let back = restored
                .with_tenant(key, |t| t.engine.checkpoint(0).to_json().unwrap())
                .unwrap();
            assert_eq!(
                orig,
                back,
                "checkpoint differs after restore for {}",
                key.label()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_checkpoints_serialize_and_stay_restorable() {
        // Two agent connections COMMITting at once must not clobber each
        // other's generation directories: every pass gets its own
        // generation and the final manifest always restores.
        let dir =
            std::env::temp_dir().join(format!("autosens-serve-ckpt-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Arc::new(Registry::new(small_config(), 1024, Recorder::disabled()));
        let key = TenantKey::new("svc", "r0").unwrap();
        reg.ingest(&key, &[rec(0, 1, 120.0), rec(60_000, 2, 340.0)])
            .unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = reg.clone();
            let dir = dir.clone();
            handles.push(std::thread::spawn(move || {
                (0..5)
                    .map(|_| reg.checkpoint_all(&dir).unwrap())
                    .collect::<Vec<u64>>()
            }));
        }
        let mut gens: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        gens.sort_unstable();
        // Serialized passes: 20 distinct, strictly increasing generations.
        assert_eq!(gens, (1..=20).collect::<Vec<u64>>());
        assert_eq!(reg.generation(), 20);
        assert!(dir.join("gen-20").exists());
        let restored = Registry::restore(&dir, small_config(), 1024, Recorder::disabled()).unwrap();
        assert_eq!(restored.generation(), 20);
        let orig = reg
            .with_tenant(&key, |t| t.engine.checkpoint(0).to_json().unwrap())
            .unwrap();
        let back = restored
            .with_tenant(&key, |t| t.engine.checkpoint(0).to_json().unwrap())
            .unwrap();
        assert_eq!(orig, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_fleet_snapshot_reuses_cached_reports_and_checkpoints() {
        let mut cfg = autosens_sim::config::SimConfig::scenario(autosens_sim::Scenario::Smoke);
        cfg.seed = 17;
        let (log, _) = autosens_sim::generate(&cfg).unwrap();
        let records = log.to_records();
        let reg = Registry::new(small_config(), records.len().max(1), Recorder::disabled());
        let keys: Vec<TenantKey> = (0..3)
            .map(|i| TenantKey::new("svc", format!("r{i}")).unwrap())
            .collect();
        for key in &keys {
            reg.ingest(key, &records).unwrap();
        }
        assert!(reg.last_fleet_snapshot().is_none());

        let cold = reg.snapshot_all(2).unwrap();
        let stats = reg.last_fleet_snapshot().unwrap();
        assert_eq!(stats.tenants, 3);
        assert_eq!(stats.reused, 0);
        assert_eq!(stats.computed, 3);

        // No new events: every tenant is served from its snapshot cache
        // and the curves are byte-identical.
        let warm = reg.snapshot_all(2).unwrap();
        let stats = reg.last_fleet_snapshot().unwrap();
        assert_eq!(stats.reused, 3);
        assert_eq!(stats.computed, 0);
        for ((ka, ra), (kb, rb)) in cold.iter().zip(warm.iter()) {
            assert_eq!(ka, kb);
            let a = serde_json::to_string(&ra.preference.series().to_vec()).unwrap();
            let b = serde_json::to_string(&rb.preference.series().to_vec()).unwrap();
            assert_eq!(a, b);
        }

        // One dirty tenant: only it recomputes.
        reg.ingest(&keys[1], &[rec(0, 3, 123.0)]).unwrap();
        reg.snapshot_all(2).unwrap();
        let stats = reg.last_fleet_snapshot().unwrap();
        assert_eq!(stats.reused, 2);
        assert_eq!(stats.computed, 1);

        // Checkpoint serialization is cached the same way: a second pass
        // with no new events reuses every tenant's bytes and the written
        // files are identical across generations.
        let dir =
            std::env::temp_dir().join(format!("autosens-serve-ckpt-reuse-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        reg.checkpoint_all(&dir).unwrap();
        for key in &keys {
            let t = reg.get(key).unwrap();
            let t = t.lock();
            let (cached_events, _) = t.ckpt_cache.as_ref().expect("checkpoint cache populated");
            assert_eq!(*cached_events, t.engine.events());
        }
        let first: Vec<String> = keys
            .iter()
            .map(|k| {
                std::fs::read_to_string(
                    dir.join("gen-1")
                        .join(format!("{}.ckpt.json", k.file_stem())),
                )
                .unwrap()
            })
            .collect();
        reg.checkpoint_all(&dir).unwrap();
        for (k, before) in keys.iter().zip(&first) {
            let after = std::fs::read_to_string(
                dir.join("gen-2")
                    .join(format!("{}.ckpt.json", k.file_stem())),
            )
            .unwrap();
            assert_eq!(
                &after,
                before,
                "cached checkpoint differs for {}",
                k.label()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_document_is_collected_under_one_lock() {
        let mut cfg = autosens_sim::config::SimConfig::scenario(autosens_sim::Scenario::Smoke);
        cfg.seed = 13;
        let (log, _) = autosens_sim::generate(&cfg).unwrap();
        let records = log.to_records();
        let reg = Registry::new(small_config(), records.len().max(1), Recorder::disabled());
        let key = TenantKey::new("svc", "r0").unwrap();
        reg.ingest(&key, &records).unwrap();
        let doc = reg.status_document(&key).unwrap();
        assert_eq!(doc.status.events, records.len() as u64);
        assert_eq!(doc.queue_depth, 0);
        assert!(!doc.curve.is_empty());
        assert!(reg
            .status_document(&TenantKey::new("nope", "x").unwrap())
            .is_err());
    }

    #[test]
    fn snapshot_all_covers_every_tenant_in_key_order() {
        let mut cfg = autosens_sim::config::SimConfig::scenario(autosens_sim::Scenario::Smoke);
        cfg.seed = 11;
        let (log, _) = autosens_sim::generate(&cfg).unwrap();
        let records = log.to_records();
        let reg = Registry::new(small_config(), records.len().max(1), Recorder::disabled());
        for i in 0..3 {
            let key = TenantKey::new("svc", format!("r{i}")).unwrap();
            reg.ingest(&key, &records).unwrap();
        }
        let all = reg.snapshot_all(2).unwrap();
        assert_eq!(all.len(), 3);
        let keys: Vec<&TenantKey> = all.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Same records, same deterministic pipeline: identical curves.
        let first = serde_json::to_string(&all[0].1.preference.series().to_vec()).unwrap();
        for (_, report) in &all[1..] {
            let other = serde_json::to_string(&report.preference.series().to_vec()).unwrap();
            assert_eq!(first, other);
        }
    }
}
