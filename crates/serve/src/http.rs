//! The hand-rolled HTTP/1.1 query plane.
//!
//! Dependency-free, like the rest of the workspace: a blocking accept
//! loop, one thread per connection, `Connection: close` on every
//! response. Only `GET` is spoken — the plane is a read-only window onto
//! the gateway's registry.
//!
//! # Endpoints
//!
//! | path | body |
//! |---|---|
//! | `/healthz` | liveness + tenant count + checkpoint generation |
//! | `/tenants` | every tenant key, sorted |
//! | `/tenant/<service>/<region>/curve` | [`PreferenceSummary`] pretty JSON, byte-identical to `analyze --json` over the same records |
//! | `/tenant/<service>/<region>/status` | the tenant's [`StatusDocument`] |
//! | `/tenant/<service>/<region>/shifts` | regime shifts from the latest detection pass |
//! | `/fleet` | cheap per-tenant intake counters (no snapshots) plus the last fleet-snapshot pass's stats |
//! | `/snapshot` | run a fleet-wide snapshot pass; body is its [`FleetSnapshotStats`] |
//! | `/metrics` | Prometheus text exposition of the gateway registry |
//!
//! The `/curve` body is produced by exactly the batch path's expression —
//! `serde_json::to_string_pretty(&PreferenceSummary::from_report(...))`
//! plus the trailing newline `println!` appends — so `diff` against
//! `autosens analyze --json` is the integration gate, not an
//! approximate comparison.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use serde::Serialize;

use autosens_core::report::{default_grid, PreferenceSummary};

use crate::error::ServeError;
use crate::gateway::Gateway;
use crate::registry::FleetSnapshotStats;
use crate::tenant::TenantKey;

/// One parsed request: method and percent-free path (query strings are
/// not part of this plane).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method verbatim.
    pub method: String,
    /// The request path.
    pub path: String,
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content type header value.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    fn error(status: u16, message: &str) -> Response {
        #[derive(Serialize)]
        struct ErrorBody {
            error: String,
        }
        let body = serde_json::to_string(&ErrorBody {
            error: message.to_string(),
        })
        .unwrap_or_else(|_| format!("{{\"error\":{message:?}}}"));
        Response::json(status, body + "\n")
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }
}

/// Cheap per-tenant intake counters for the fleet summary (no snapshot
/// is run — this endpoint stays O(tenants), not O(records)).
#[derive(Debug, Clone, Serialize)]
struct FleetTenant {
    service: String,
    region: String,
    events: u64,
    live_records: u64,
    filtered: u64,
    late: u64,
    duplicates: u64,
    queue_depth: u64,
}

#[derive(Debug, Clone, Serialize)]
struct FleetSummary {
    tenants: usize,
    generation: u64,
    /// Stats for the most recent `/snapshot` (or other fleet-wide
    /// snapshot) pass; `null` before the first pass.
    last_fleet_snapshot: Option<FleetSnapshotStats>,
    fleet: Vec<FleetTenant>,
}

/// Serve the query plane until [`Gateway::request_stop`]; same unblock
/// contract as the ingest accept loop (dial once after stopping).
pub fn serve_http(gateway: &Gateway, listener: TcpListener) -> Result<(), ServeError> {
    loop {
        let (stream, _) = listener.accept()?;
        if gateway.stopping() {
            return Ok(());
        }
        let gw = gateway.clone();
        std::thread::spawn(move || {
            let _ = handle_http(&gw, stream);
        });
    }
}

/// Serve one HTTP connection: parse the request line, drain headers,
/// dispatch, write one `Connection: close` response.
pub fn handle_http(gateway: &Gateway, stream: TcpStream) -> Result<(), ServeError> {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone()?);
    let request = match read_request(&mut reader) {
        Ok(Some(r)) => r,
        Ok(None) => return Ok(()),
        Err(_) => {
            let mut stream = stream;
            return write_response(&mut stream, &Response::error(400, "malformed request"));
        }
    };
    gateway
        .recorder()
        .metrics()
        .counter("autosens_serve_http_requests_total")
        .inc();
    let response = route(gateway, &request);
    let mut stream = stream;
    write_response(&mut stream, &response)
}

/// Longest request or header line accepted before the connection is
/// rejected with 400 (the paths this plane speaks are tiny; anything
/// longer is an abuse of the unauthenticated listener, not a request).
pub const MAX_LINE_BYTES: u64 = 8 * 1024;

/// Most headers drained before the request is rejected.
pub const MAX_HEADERS: usize = 128;

/// Read one `\n`-terminated line without letting a newline-free peer
/// grow the buffer past [`MAX_LINE_BYTES`]. Returns `None` on EOF.
fn read_line_bounded<R: BufRead>(reader: &mut R) -> Result<Option<String>, ServeError> {
    let mut limited = std::io::Read::take(&mut *reader, MAX_LINE_BYTES);
    let mut buf = Vec::new();
    let n = limited.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if !buf.ends_with(b"\n") && n as u64 == MAX_LINE_BYTES {
        return Err(ServeError::Protocol(format!(
            "request line exceeds {MAX_LINE_BYTES} bytes"
        )));
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ServeError::Protocol("request line is not UTF-8".into()))
}

/// Parse the request line and discard headers up to the blank line.
/// Returns `None` when the peer closed before sending anything. Reads
/// are bounded ([`MAX_LINE_BYTES`] per line, [`MAX_HEADERS`] headers) so
/// an unauthenticated client cannot grow gateway memory without limit.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, ServeError> {
    let line = match read_line_bounded(reader)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => (m, p, v),
        _ => return Err(ServeError::Protocol(format!("bad request line {line:?}"))),
    };
    let _ = version;
    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
    };
    for drained in 0.. {
        if drained == MAX_HEADERS {
            return Err(ServeError::Protocol(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        match read_line_bounded(reader)? {
            None => break,
            Some(header) if header == "\r\n" || header == "\n" => break,
            Some(_) => {}
        }
    }
    Ok(Some(request))
}

/// Serialize one response with `Connection: close`.
pub fn write_response<W: Write>(w: &mut W, response: &Response) -> Result<(), ServeError> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len()
    )?;
    w.write_all(&response.body)?;
    w.flush()?;
    Ok(())
}

/// Dispatch one request against the gateway's registry.
pub fn route(gateway: &Gateway, request: &Request) -> Response {
    if request.method != "GET" {
        return Response::error(405, "only GET is supported");
    }
    let segments: Vec<&str> = request
        .path
        .trim_matches('/')
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match segments.as_slice() {
        ["healthz"] => healthz(gateway),
        ["tenants"] => tenants(gateway),
        ["fleet"] => fleet(gateway),
        ["snapshot"] => snapshot_fleet(gateway),
        ["metrics"] => metrics(gateway),
        ["tenant", service, region, endpoint] => match TenantKey::new(*service, *region) {
            Ok(key) => tenant_endpoint(gateway, &key, endpoint),
            Err(e) => Response::error(400, &e.to_string()),
        },
        _ => Response::error(404, &format!("no route for {}", request.path)),
    }
}

fn healthz(gateway: &Gateway) -> Response {
    #[derive(Serialize)]
    struct Health {
        status: &'static str,
        tenants: usize,
        generation: u64,
    }
    let health = Health {
        status: "ok",
        tenants: gateway.registry().len(),
        generation: gateway.registry().generation(),
    };
    match serde_json::to_string(&health) {
        Ok(body) => Response::json(200, body + "\n"),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

fn tenants(gateway: &Gateway) -> Response {
    match serde_json::to_string_pretty(&gateway.registry().keys()) {
        Ok(body) => Response::json(200, body + "\n"),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

fn fleet(gateway: &Gateway) -> Response {
    let registry = gateway.registry();
    let mut fleet = Vec::new();
    for key in registry.keys() {
        let Some(tenant) = registry.get(&key) else {
            continue;
        };
        let t = tenant.lock();
        let status = t.engine.status();
        fleet.push(FleetTenant {
            service: key.service.clone(),
            region: key.region.clone(),
            events: status.events,
            live_records: status.live_records,
            filtered: status.filtered,
            late: status.late,
            duplicates: status.duplicates,
            queue_depth: t.ingestor.queue_depth() as u64,
        });
    }
    let summary = FleetSummary {
        tenants: fleet.len(),
        generation: registry.generation(),
        last_fleet_snapshot: registry.last_fleet_snapshot(),
        fleet,
    };
    match serde_json::to_string_pretty(&summary) {
        Ok(body) => Response::json(200, body + "\n"),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

/// Run a fleet-wide snapshot pass and report its wall-clock and cache
/// accounting. Tenants untouched since their last snapshot are served
/// from the engine snapshot cache, so a warm pass over a quiet fleet is
/// orders of magnitude faster than the cold one.
fn snapshot_fleet(gateway: &Gateway) -> Response {
    let registry = gateway.registry();
    match registry.snapshot_all(gateway.threads()) {
        Ok(_) => match registry.last_fleet_snapshot() {
            Some(stats) => match serde_json::to_string_pretty(&stats) {
                Ok(body) => Response::json(200, body + "\n"),
                Err(e) => Response::error(500, &e.to_string()),
            },
            // Empty fleet: snapshot_all returns without recording stats.
            None => Response::json(200, "null\n".into()),
        },
        Err(e) => Response::error(500, &e.to_string()),
    }
}

fn metrics(gateway: &Gateway) -> Response {
    let snapshot = gateway.recorder().metrics().snapshot();
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        body: snapshot.to_prometheus().into_bytes(),
    }
}

fn tenant_endpoint(gateway: &Gateway, key: &TenantKey, endpoint: &str) -> Response {
    let registry = gateway.registry();
    if registry.get(key).is_none() {
        return Response::error(404, &format!("unknown tenant {}", key.label()));
    }
    match endpoint {
        "curve" => match registry.snapshot(key) {
            Ok((report, _)) => {
                // The exact expression batch `analyze --json` prints (the
                // trailing newline is println!'s) — byte-identity is the
                // contract, see the module docs.
                let summary = PreferenceSummary::from_report("all", &report, &default_grid());
                match serde_json::to_string_pretty(&summary) {
                    Ok(body) => Response::json(200, body + "\n"),
                    Err(e) => Response::error(500, &e.to_string()),
                }
            }
            Err(e) => Response::error(500, &e.to_string()),
        },
        "status" => match registry.status_document(key) {
            // Snapshot and document are assembled under one tenant lock,
            // so the report and engine counters describe the same instant
            // even while other connections keep ingesting.
            Ok(doc) => match doc.to_json() {
                Ok(body) => Response::json(200, body + "\n"),
                Err(e) => Response::error(500, &e.to_string()),
            },
            Err(e) => Response::error(500, &e.to_string()),
        },
        "shifts" => {
            let shifts = match registry.with_tenant(key, |t| {
                t.engine
                    .run_detection()
                    .map(|_| t.engine.last_shifts().to_vec())
            }) {
                Ok(Ok(shifts)) => shifts,
                Ok(Err(e)) => return Response::error(500, &e.to_string()),
                Err(e) => return Response::error(500, &e.to_string()),
            };
            match serde_json::to_string_pretty(&shifts) {
                Ok(body) => Response::json(200, body + "\n"),
                Err(e) => Response::error(500, &e.to_string()),
            }
        }
        other => Response::error(404, &format!("unknown tenant endpoint {other:?}")),
    }
}

/// A minimal blocking HTTP GET used by the CLI `query` subcommand and
/// the load scenario (no external HTTP client in the workspace).
pub fn http_get(addr: &str, path: &str) -> Result<(u16, Vec<u8>), ServeError> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    write!(
        writer,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServeError::Protocol(format!("bad status line {status_line:?}")))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        if header == "\r\n" || header == "\n" {
            break;
        }
        if let Some(rest) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = rest.trim().parse().ok();
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            std::io::Read::read_exact(&mut reader, &mut body)?;
        }
        None => {
            std::io::Read::read_to_end(&mut reader, &mut body)?;
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_obs::Recorder;

    use crate::gateway::GatewayConfig;

    #[test]
    fn parses_requests_and_routes_404() {
        let wire = b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut &wire[..]).unwrap().unwrap();
        assert_eq!(
            req,
            Request {
                method: "GET".into(),
                path: "/nope".into()
            }
        );
        let gw = Gateway::new(GatewayConfig::default(), Recorder::disabled()).unwrap();
        assert_eq!(route(&gw, &req).status, 404);
        assert_eq!(
            route(
                &gw,
                &Request {
                    method: "POST".into(),
                    path: "/healthz".into()
                }
            )
            .status,
            405
        );
        assert_eq!(
            route(
                &gw,
                &Request {
                    method: "GET".into(),
                    path: "/healthz".into()
                }
            )
            .status,
            200
        );
    }

    #[test]
    fn unknown_tenant_is_404_and_bad_key_is_400() {
        let gw = Gateway::new(GatewayConfig::default(), Recorder::disabled()).unwrap();
        let r = route(
            &gw,
            &Request {
                method: "GET".into(),
                path: "/tenant/a/b/curve".into(),
            },
        );
        assert_eq!(r.status, 404);
        let r = route(
            &gw,
            &Request {
                method: "GET".into(),
                path: "/tenant/a%2F/b/curve".into(),
            },
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn newline_free_flood_is_rejected_not_buffered() {
        // A peer streaming bytes with no newline must hit the line bound,
        // not grow the request buffer indefinitely.
        let flood = vec![b'a'; MAX_LINE_BYTES as usize * 4];
        assert!(read_request(&mut &flood[..]).is_err());
    }

    #[test]
    fn unbounded_header_count_is_rejected() {
        let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            wire.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        assert!(read_request(&mut &wire[..]).is_err());
        // One under the cap still parses.
        let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS - 1) {
            wire.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        assert_eq!(
            read_request(&mut &wire[..]).unwrap().unwrap().path,
            "/".to_string()
        );
    }

    #[test]
    fn responses_serialize_with_content_length() {
        let resp = Response::json(200, "{}\n".into());
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));
    }
}
