//! The agent↔gateway wire protocol: length-prefixed binary frames.
//!
//! Every frame is `u32` little-endian payload length followed by the
//! payload; the payload's first byte is the frame type. Integers are
//! little-endian, floats are IEEE-754 `f64` bit patterns, strings are
//! `u16` length + UTF-8 bytes. The record encoding is the fixed-width
//! 35-byte row below — the same field-for-field content as the CSV/JSONL
//! codecs, so a pushed record round-trips bit-identically (the `f64`
//! latency is carried as raw bits, never reformatted through text).
//!
//! ```text
//! HELLO  (agent → gateway)  : [1][u16 protocol version]
//! BATCH  (agent → gateway)  : [2][str service][str region][u32 n][n × record]
//! COMMIT (agent → gateway)  : [3]            — checkpoint everything durable
//! ACK    (gateway → agent)  : [4][u64 records accepted so far on this conn]
//! ERROR  (gateway → agent)  : [5][str message]
//!
//! record (35 bytes): [i64 time_ms][u8 action][f64 latency bits]
//!                    [u64 user][u8 class][i64 tz_offset_ms][u8 outcome]
//! ```
//!
//! A gateway ACKs every HELLO, BATCH, and COMMIT (for COMMIT, only after
//! the checkpoint has been renamed into place), so an agent that has seen
//! its COMMIT ACK knows the pushed records survive a gateway kill.

use std::io::{Read, Write};

use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::SimTime;

use crate::error::ServeError;
use crate::tenant::TenantKey;

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u16 = 1;

/// Encoded size of one record on the wire.
pub const RECORD_WIRE_BYTES: usize = 8 + 1 + 8 + 8 + 1 + 8 + 1;

/// Upper bound on one frame's payload (a batch of ~900k records); anything
/// larger is a protocol violation, not a bigger buffer.
pub const MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// A decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection preamble with the agent's protocol version.
    Hello {
        /// The agent's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// One batch of records for one tenant.
    Batch {
        /// The tenant every record in the batch belongs to.
        tenant: TenantKey,
        /// The records, in arrival order.
        records: Vec<ActionRecord>,
    },
    /// Ask the gateway to checkpoint every tenant durably.
    Commit,
    /// Gateway acknowledgement carrying the connection's accepted-record
    /// count.
    Ack {
        /// Records accepted on this connection so far.
        records: u64,
    },
    /// Gateway-side failure description (the connection closes after).
    Error {
        /// What went wrong.
        message: String,
    },
}

const T_HELLO: u8 = 1;
const T_BATCH: u8 = 2;
const T_COMMIT: u8 = 3;
const T_ACK: u8 = 4;
const T_ERROR: u8 = 5;

/// Append a `u16`-length-prefixed string. Anything longer than the
/// prefix can express (e.g. an [`Frame::Error`] message built from a
/// long io error chain — tenant labels are validated far shorter) is
/// truncated on a char boundary; a silently wrapped `len as u16` would
/// desynchronize the peer's decoder.
fn put_str(buf: &mut Vec<u8>, s: &str) {
    let mut end = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    let s = &s[..end];
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ServeError::Protocol("frame truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ServeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ServeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, ServeError> {
        let n = self.u16()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_string)
            .map_err(|_| ServeError::Protocol("string is not UTF-8".into()))
    }

    fn done(&self) -> Result<(), ServeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!(
                "{} trailing bytes after frame body",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Append one record's 35-byte wire row.
pub fn encode_record(buf: &mut Vec<u8>, r: &ActionRecord) {
    buf.extend_from_slice(&r.time.0.to_le_bytes());
    buf.push(r.action.code());
    buf.extend_from_slice(&r.latency_ms.to_bits().to_le_bytes());
    buf.extend_from_slice(&r.user.0.to_le_bytes());
    buf.push(r.class.code());
    buf.extend_from_slice(&r.tz_offset_ms.to_le_bytes());
    buf.push(r.outcome.code());
}

fn decode_record(c: &mut Cursor<'_>) -> Result<ActionRecord, ServeError> {
    Ok(ActionRecord {
        time: SimTime(c.i64()?),
        action: ActionType::from_code(c.u8()?),
        latency_ms: c.f64()?,
        user: UserId(c.u64()?),
        class: UserClass::from_code(c.u8()?),
        tz_offset_ms: c.i64()?,
        outcome: Outcome::from_code(c.u8()?),
    })
}

impl Frame {
    /// Serialize the frame payload (without the length prefix).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Frame::Hello { version } => {
                let mut buf = vec![T_HELLO];
                buf.extend_from_slice(&version.to_le_bytes());
                buf
            }
            Frame::Batch { tenant, records } => {
                let mut buf = Vec::with_capacity(16 + records.len() * RECORD_WIRE_BYTES);
                buf.push(T_BATCH);
                put_str(&mut buf, &tenant.service);
                put_str(&mut buf, &tenant.region);
                buf.extend_from_slice(&(records.len() as u32).to_le_bytes());
                for r in records {
                    encode_record(&mut buf, r);
                }
                buf
            }
            Frame::Commit => vec![T_COMMIT],
            Frame::Ack { records } => {
                let mut buf = vec![T_ACK];
                buf.extend_from_slice(&records.to_le_bytes());
                buf
            }
            Frame::Error { message } => {
                let mut buf = vec![T_ERROR];
                put_str(&mut buf, message);
                buf
            }
        }
    }

    /// Parse one frame payload.
    pub fn decode(payload: &[u8]) -> Result<Frame, ServeError> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let frame = match c.u8()? {
            T_HELLO => Frame::Hello { version: c.u16()? },
            T_BATCH => {
                let tenant = TenantKey::new(c.str()?, c.str()?)?;
                let n = c.u32()? as usize;
                let body = payload.len().saturating_sub(c.pos);
                if n * RECORD_WIRE_BYTES != body {
                    return Err(ServeError::Protocol(format!(
                        "batch declares {n} records ({} bytes) but carries {body} bytes",
                        n * RECORD_WIRE_BYTES
                    )));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(decode_record(&mut c)?);
                }
                Frame::Batch { tenant, records }
            }
            T_COMMIT => Frame::Commit,
            T_ACK => Frame::Ack { records: c.u64()? },
            T_ERROR => Frame::Error { message: c.str()? },
            t => return Err(ServeError::Protocol(format!("unknown frame type {t}"))),
        };
        c.done()?;
        Ok(frame)
    }
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), ServeError> {
    let payload = frame.encode();
    if payload.len() > MAX_FRAME_BYTES {
        return Err(ServeError::Protocol(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame. Returns `None` on a clean EOF at a
/// frame boundary (the peer closed the connection).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, ServeError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(ServeError::Protocol(format!(
            "frame length {len} outside 1..={MAX_FRAME_BYTES}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Frame::decode(&payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: i64, latency: f64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t),
            action: ActionType::Search,
            latency_ms: latency,
            user: UserId(42),
            class: UserClass::Consumer,
            tz_offset_ms: -3_600_000,
            outcome: Outcome::Success,
        }
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
            },
            Frame::Batch {
                tenant: TenantKey::new("mail", "eu-west1").unwrap(),
                records: vec![
                    rec(1_000, 123.456),
                    rec(2_000, f64::from_bits(0x3FF123456789ABCD)),
                ],
            },
            Frame::Commit,
            Frame::Ack { records: 7 },
            Frame::Error {
                message: "nope".into(),
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = &wire[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn latency_bits_survive_the_wire() {
        let r0 = rec(5, f64::from_bits(0x4028_B0A3_D70A_3D71));
        let f = Frame::Batch {
            tenant: TenantKey::new("s", "r").unwrap(),
            records: vec![r0.clone()],
        };
        match Frame::decode(&f.encode()).unwrap() {
            Frame::Batch { records, .. } => {
                assert_eq!(records[0].latency_ms.to_bits(), r0.latency_ms.to_bits());
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_frames() {
        assert!(Frame::decode(&[]).is_err());
        assert!(Frame::decode(&[99]).is_err());
        // Truncated batch body.
        let f = Frame::Batch {
            tenant: TenantKey::new("s", "r").unwrap(),
            records: vec![rec(1, 2.0)],
        };
        let mut bytes = f.encode();
        bytes.pop();
        assert!(Frame::decode(&bytes).is_err());
        // Trailing garbage.
        let mut bytes = Frame::Commit.encode();
        bytes.push(0);
        assert!(Frame::decode(&bytes).is_err());
        // Oversized declared length.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &wire[..]).is_err());
    }

    #[test]
    fn oversized_error_message_truncates_to_a_valid_frame() {
        // 70k of multi-byte chars: the length prefix cannot express it,
        // so the encoder must truncate on a char boundary, not wrap.
        let message = "é".repeat(35_000);
        let f = Frame::Error { message };
        let decoded = Frame::decode(&f.encode()).unwrap();
        match decoded {
            Frame::Error { message } => {
                assert!(message.len() <= u16::MAX as usize);
                assert!(message.chars().all(|c| c == 'é'));
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn record_wire_size_matches_constant() {
        let mut buf = Vec::new();
        encode_record(&mut buf, &rec(1, 2.0));
        assert_eq!(buf.len(), RECORD_WIRE_BYTES);
    }
}
