//! Error type of the serving plane.

use std::fmt;

/// Anything that can go wrong between an agent, the gateway, and the
/// query plane.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O failure on a socket, a checkpoint file, or a source file.
    Io(std::io::Error),
    /// A malformed or protocol-violating frame.
    Protocol(String),
    /// A tenant key that cannot be used (empty or unsafe labels).
    BadTenant(String),
    /// A streaming-engine failure for one tenant.
    Stream(autosens_stream::StreamError),
    /// An analysis failure while snapshotting a tenant.
    Analysis(autosens_core::AutoSensError),
    /// A corrupt or version-mismatched checkpoint directory.
    Checkpoint(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::BadTenant(m) => write!(f, "bad tenant: {m}"),
            ServeError::Stream(e) => write!(f, "stream error: {e}"),
            ServeError::Analysis(e) => write!(f, "analysis error: {e}"),
            ServeError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<autosens_stream::StreamError> for ServeError {
    fn from(e: autosens_stream::StreamError) -> Self {
        ServeError::Stream(e)
    }
}

impl From<autosens_core::AutoSensError> for ServeError {
    fn from(e: autosens_core::AutoSensError) -> Self {
        ServeError::Analysis(e)
    }
}
