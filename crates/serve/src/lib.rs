//! Multi-tenant ingest service: the agent→gateway split.
//!
//! This crate turns the single-process streaming pipeline into a small
//! service without taking on any dependency the workspace doesn't
//! already vendor:
//!
//! * **[`agent`]** — a push client that batches [`ActionRecord`]s for
//!   one tenant and ships them over a length-prefixed binary framing
//!   (TCP or unix socket) with connect retry/backoff and exact
//!   ACK-based durability accounting.
//! * **[`gateway`]** — accepts many agent connections and routes every
//!   batch to a per-tenant (`service × region`) [`StreamEngine`], so
//!   each tenant gets the exact backpressure, watermark, dedup, and
//!   loss-counting machinery the single-tenant `watch` path uses.
//! * **[`registry`]** — the sharded tenant map plus atomic fleet
//!   checkpointing: every tenant's engine checkpoint lands in one
//!   versioned generation directory, manifest-switched so a crash
//!   leaves either the old fleet or the new fleet, never a mix.
//! * **[`http`]** — a hand-rolled HTTP/1.1 query plane serving the
//!   current normalized preference curve, status document, regime-shift
//!   history, fleet summary, and Prometheus metrics as JSON/text.
//!
//! The load-bearing invariant, inherited from the streaming layer's
//! batch-equivalence theorem: a tenant's `/curve` response is
//! **byte-identical** to `autosens analyze --json` over the same
//! records, because the gateway snapshots through the same
//! deterministic pipeline and serializes through the same expression.
//!
//! [`ActionRecord`]: autosens_telemetry::record::ActionRecord
//! [`StreamEngine`]: autosens_stream::StreamEngine

pub mod agent;
pub mod error;
pub mod frame;
pub mod gateway;
pub mod http;
pub mod registry;
pub mod tenant;

pub use agent::{Agent, AgentConfig};
pub use error::ServeError;
pub use frame::{Frame, MAX_FRAME_BYTES, PROTOCOL_VERSION, RECORD_WIRE_BYTES};
pub use gateway::{Gateway, GatewayConfig};
pub use http::{http_get, serve_http};
pub use registry::{Manifest, ManifestEntry, Registry, Tenant, MANIFEST_VERSION};
pub use tenant::{valid_label, TenantKey, MAX_LABEL_LEN};

#[cfg(test)]
mod tests {
    use std::net::TcpListener;

    use autosens_obs::Recorder;
    use autosens_sim::config::{Scenario, SimConfig};
    use autosens_sim::generate;
    use autosens_telemetry::record::ActionRecord;

    use super::*;

    fn sim_records(seed: u64) -> Vec<ActionRecord> {
        let mut cfg = SimConfig::scenario(Scenario::Smoke);
        cfg.seed = seed;
        let (log, _) = generate(&cfg).expect("valid sim config");
        log.to_records()
    }

    fn spawn_gateway(config: GatewayConfig) -> (Gateway, String, String) {
        let gw = Gateway::new(config, Recorder::disabled()).unwrap();
        let ingest = TcpListener::bind("127.0.0.1:0").unwrap();
        let ingest_addr = ingest.local_addr().unwrap().to_string();
        let http = TcpListener::bind("127.0.0.1:0").unwrap();
        let http_addr = http.local_addr().unwrap().to_string();
        {
            let gw = gw.clone();
            std::thread::spawn(move || {
                let _ = gw.serve_tcp(ingest);
            });
        }
        {
            let gw = gw.clone();
            std::thread::spawn(move || {
                let _ = serve_http(&gw, http);
            });
        }
        (gw, ingest_addr, http_addr)
    }

    fn stop_gateway(gw: &Gateway, ingest_addr: &str, http_addr: &str) {
        gw.request_stop();
        let _ = std::net::TcpStream::connect(ingest_addr);
        let _ = std::net::TcpStream::connect(http_addr);
    }

    #[test]
    fn end_to_end_push_then_query_matches_direct_snapshot() {
        let (gw, ingest_addr, http_addr) = spawn_gateway(GatewayConfig::default());
        let tenant = TenantKey::new("mail", "eu-west1").unwrap();
        let records = sim_records(7);

        let mut agent = Agent::connect(AgentConfig {
            batch_size: 256,
            ..AgentConfig::new(ingest_addr.clone(), tenant.clone())
        })
        .unwrap();
        for r in &records {
            agent.push(r.clone()).unwrap();
        }
        agent.flush().unwrap();
        assert_eq!(agent.acked(), records.len() as u64);

        // The HTTP curve must equal a snapshot taken straight off the
        // registry (same engine, same serialization).
        let (status, body) = http_get(&http_addr, "/tenant/mail/eu-west1/curve").unwrap();
        assert_eq!(status, 200);
        let (report, _) = gw.registry().snapshot(&tenant).unwrap();
        let summary = autosens_core::report::PreferenceSummary::from_report(
            "all",
            &report,
            &autosens_core::report::default_grid(),
        );
        let direct = serde_json::to_string_pretty(&summary).unwrap() + "\n";
        assert_eq!(String::from_utf8(body).unwrap(), direct);

        let (status, body) = http_get(&http_addr, "/fleet").unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8(body).unwrap().contains("\"eu-west1\""));

        let (status, _) = http_get(&http_addr, "/tenant/mail/nowhere/curve").unwrap();
        assert_eq!(status, 404);

        stop_gateway(&gw, &ingest_addr, &http_addr);
    }

    #[test]
    fn multi_tenant_checkpoint_restart_serves_identical_curves() {
        let dir = std::env::temp_dir().join(format!("autosens-serve-e2e-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = GatewayConfig {
            checkpoint_dir: Some(dir.clone()),
            ..GatewayConfig::default()
        };
        let (gw, ingest_addr, http_addr) = spawn_gateway(config.clone());

        let tenants: Vec<TenantKey> = (0..4)
            .map(|i| TenantKey::new("svc", format!("region{i}")).unwrap())
            .collect();
        for (i, tenant) in tenants.iter().enumerate() {
            let mut agent = Agent::connect(AgentConfig {
                batch_size: 512,
                ..AgentConfig::new(ingest_addr.clone(), tenant.clone())
            })
            .unwrap();
            let records = sim_records(100 + i as u64);
            let n = records.len() as u64;
            for r in records {
                agent.push(r).unwrap();
            }
            // COMMIT: ack arrives only after the generation is durable.
            let acked = agent.commit().unwrap();
            assert_eq!(acked, n);
        }

        let mut before = Vec::new();
        for tenant in &tenants {
            let (status, body) = http_get(
                &http_addr,
                &format!("/tenant/{}/{}/curve", tenant.service, tenant.region),
            )
            .unwrap();
            assert_eq!(status, 200);
            before.push(body);
        }
        stop_gateway(&gw, &ingest_addr, &http_addr);

        // "Kill" the gateway and bring up a fresh one from the manifest.
        let (gw2, ingest_addr2, http_addr2) = spawn_gateway(GatewayConfig {
            resume: true,
            ..config
        });
        assert_eq!(gw2.registry().len(), tenants.len());
        for (tenant, expected) in tenants.iter().zip(&before) {
            let (status, body) = http_get(
                &http_addr2,
                &format!("/tenant/{}/{}/curve", tenant.service, tenant.region),
            )
            .unwrap();
            assert_eq!(status, 200);
            assert_eq!(
                body,
                *expected,
                "restored curve differs for {}",
                tenant.label()
            );
        }
        stop_gateway(&gw2, &ingest_addr2, &http_addr2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_agents_one_tenant_interleave_safely() {
        let (gw, ingest_addr, http_addr) = spawn_gateway(GatewayConfig::default());
        let tenant = TenantKey::new("mail", "us").unwrap();
        let all = sim_records(42);
        let total = all.len() as u64;
        let mid = all.len() / 2;
        let halves: Vec<Vec<ActionRecord>> = vec![all[..mid].to_vec(), all[mid..].to_vec()];
        let handles: Vec<_> = halves
            .into_iter()
            .map(|half| {
                let addr = ingest_addr.clone();
                let tenant = tenant.clone();
                std::thread::spawn(move || {
                    let mut agent = Agent::connect(AgentConfig {
                        batch_size: 128,
                        ..AgentConfig::new(addr, tenant)
                    })
                    .unwrap();
                    for r in half {
                        agent.push(r).unwrap();
                    }
                    agent.flush().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = gw
            .registry()
            .with_tenant(&tenant, |t| t.engine.status().events)
            .unwrap();
        assert_eq!(events, total);
        stop_gateway(&gw, &ingest_addr, &http_addr);
    }
}
