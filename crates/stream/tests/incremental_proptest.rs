//! Property test for the dirty-tracked incremental snapshot path: over
//! random insert/evict/late-drop interleavings and every supported
//! thread count, three ways of analyzing the live window must agree
//! **byte-for-byte** (compared as serialized `PreferenceSummary` JSON,
//! the same document the serve plane's `/curve` endpoint returns):
//!
//! 1. the incremental engine — snapshots taken mid-stream so later
//!    snapshots reuse the cached store prefix and merged partials;
//! 2. a cold engine fed the identical arrival sequence and snapshotted
//!    once at the end (full recompute);
//! 3. the batch plan entry point over the live window's records.
//!
//! A zero-dirty double snapshot (no events in between) must also return
//! the cached report verbatim.

use autosens_core::report::{default_grid, PreferenceSummary};
use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_stream::{StreamConfig, StreamEngine};
use autosens_telemetry::log::TelemetryLog;
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::SimTime;
use proptest::prelude::*;

const HOUR_MS: i64 = 3_600_000;

/// One synthetic arrival. `minute` jitters arrivals out of order (late
/// ones past the watermark get counted-and-dropped); the rest varies the
/// loss-cell and latency-bin coverage.
#[derive(Debug, Clone)]
struct Arrival {
    minute: i64,
    latency_ms: f64,
    user: u64,
    business: bool,
    success: bool,
}

fn arrival() -> impl Strategy<Value = Arrival> {
    // ~36 hours of event time so the 6-hour retention window evicts
    // whole shards mid-run.
    (
        0i64..(36 * 60),
        1.0f64..2_000.0,
        0u64..8,
        any::<bool>(),
        0u8..10,
    )
        .prop_map(|(minute, latency_ms, user, business, success)| Arrival {
            minute,
            latency_ms,
            user,
            business,
            success: success > 0,
        })
}

fn to_record(a: &Arrival) -> ActionRecord {
    ActionRecord {
        time: SimTime(a.minute * 60_000),
        action: ActionType::SelectMail,
        latency_ms: a.latency_ms,
        user: UserId(a.user),
        class: if a.business {
            UserClass::Business
        } else {
            UserClass::Consumer
        },
        tz_offset_ms: 0,
        outcome: if a.success {
            Outcome::Success
        } else {
            Outcome::Error
        },
    }
}

fn stream_config(threads: usize) -> StreamConfig {
    StreamConfig {
        analysis: AutoSensConfig {
            threads,
            ..AutoSensConfig::default()
        },
        shard_ms: HOUR_MS,
        allowed_lateness_ms: 2 * HOUR_MS,
        retain_ms: Some(6 * HOUR_MS),
        detector: None,
        decay_half_life_ms: None,
    }
}

/// The byte-level identity everything is compared under.
fn summary_json(report: &autosens_core::pipeline::AnalysisReport) -> String {
    serde_json::to_string_pretty(&PreferenceSummary::from_report(
        "all",
        report,
        &default_grid(),
    ))
    .expect("summary serialization")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    #[test]
    fn incremental_equals_full_recompute_equals_batch(
        arrivals in prop::collection::vec(arrival(), 40..220),
        snapshot_every in 7usize..40,
    ) {
        for threads in [1usize, 2, 4, 8] {
            // 1. Incremental: snapshot mid-stream so the final snapshot
            //    reuses a cached prefix and merged per-shard partials.
            let mut engine =
                StreamEngine::new(stream_config(threads), Slice::all()).expect("engine");
            for (i, a) in arrivals.iter().enumerate() {
                engine.push(to_record(a));
                if i % snapshot_every == snapshot_every - 1 {
                    let _ = engine.snapshot();
                }
            }
            let incremental = engine.snapshot();

            // 2. Full recompute: a cold engine, same arrival sequence,
            //    one snapshot at the end.
            let mut cold =
                StreamEngine::new(stream_config(threads), Slice::all()).expect("engine");
            for a in &arrivals {
                cold.push(to_record(a));
            }
            let full = cold.snapshot();

            // 3. Batch: the single plan entry point over the live
            //    window's records (flattened from the checkpoint, which
            //    lists shards in bucket order — the sanitized order).
            let live: Vec<ActionRecord> = engine
                .checkpoint(0)
                .shards
                .iter()
                .flat_map(|s| s.records.iter().copied())
                .collect();
            prop_assert!(!live.is_empty());
            let log = TelemetryLog::from_records(live).expect("live-window log");
            let batch = AnalysisPlan::new(stream_config(threads).analysis)
                .run(PlanInput::log(&log), RunOptions::default());

            match (incremental, full, batch) {
                (Ok(inc), Ok(full), Ok(batch)) => {
                    let inc_json = summary_json(&inc);
                    prop_assert_eq!(&inc_json, &summary_json(&full),
                        "incremental vs full recompute diverged (threads={})", threads);
                    prop_assert_eq!(&inc_json, &summary_json(&batch.report),
                        "incremental vs batch diverged (threads={})", threads);

                    // Zero dirty shards: a second snapshot with no new
                    // events must serve the cached report verbatim.
                    let again = engine.snapshot().expect("clean snapshot");
                    prop_assert!(engine.last_snapshot_reused());
                    prop_assert_eq!(&inc_json, &summary_json(&again),
                        "cached report diverged (threads={})", threads);
                }
                (inc, full, batch) => {
                    // Degenerate windows (too little data) must fail the
                    // same way on every path, never succeed on one.
                    let msgs = [
                        inc.err().map(|e| e.to_string()),
                        full.err().map(|e| e.to_string()),
                        batch.err().map(|e| e.to_string()),
                    ];
                    prop_assert!(
                        msgs.iter().all(|m| m.is_some()),
                        "one path succeeded while another failed: {:?} (threads={})",
                        msgs,
                        threads
                    );
                    prop_assert_eq!(&msgs[0], &msgs[1]);
                    prop_assert_eq!(&msgs[0], &msgs[2]);
                }
            }
        }
    }
}
