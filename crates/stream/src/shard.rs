//! Time-bucketed shards with incremental per-shard analysis state.
//!
//! Every shard covers one `[bucket * shard_ms, (bucket + 1) * shard_ms)`
//! interval of event time and holds its records **sorted by time, stable
//! in arrival order among equal timestamps** — exactly the order batch
//! sanitize's stable sort produces. Because exact duplicates share a
//! timestamp, and equal timestamps never span a bucket boundary, keeping
//! duplicates out at insert time is equivalent to batch
//! `dedup_exact` / `dedup_exact_par` over the drained log.
//!
//! Shards store their rows columnar (a [`ColumnStore`]) so a snapshot
//! concatenates seven column vectors instead of cloning records, and the
//! merged log hands the analysis stack a zero-copy view.
//!
//! Alongside the rows each shard maintains the plan layer's cacheable
//! operator state ([`PlanPartials`]: the per-cell biased histograms and
//! action counts of [`GroupPartition`](autosens_core::GroupPartition),
//! the per-day loss-cell observation counts of
//! [`LossCounts`](autosens_telemetry::loss::LossCounts)) plus
//! per-local-hour counters — so a snapshot merges shard partials instead
//! of rescanning history. Histogram counts are unit-weight
//! (integer-valued) additions and loss counts are `u64`s, so shard-merge
//! order cannot perturb the result: the merged partials are bit-identical
//! to a batch rescan.

use autosens_core::PlanPartials;
use autosens_exec::Mergeable;
use autosens_stats::binning::Binner;
use autosens_telemetry::log::ColumnStore;
use autosens_telemetry::record::ActionRecord;

/// One time bucket's rows (columnar) and partial aggregates.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    /// Rows sorted by time, arrival-stable among equal timestamps.
    pub cols: ColumnStore,
    /// The plan layer's cacheable per-shard operator state: the
    /// `alpha`/`biased_pdf` [`GroupPartition`](autosens_core::GroupPartition)
    /// fold and the `lossmodel`
    /// [`LossCounts`](autosens_telemetry::loss::LossCounts) fold, bundled.
    pub partials: PlanPartials,
    /// Actions per local hour slot (merged across shards via the
    /// fixed-size-array [`Mergeable`] impl).
    pub hour_counts: [u64; 24],
}

impl Shard {
    pub fn new(binner: &Binner) -> Shard {
        Shard {
            cols: ColumnStore::new(),
            partials: PlanPartials::empty(binner),
            hour_counts: [0u64; 24],
        }
    }

    /// Number of rows held.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Fold one record into the derived aggregates (partition, loss
    /// counts, hour counters) — shared by insert and rebuild.
    fn aggregate(&mut self, r: &ActionRecord) {
        self.partials.record(r);
        self.hour_counts[r.hour_slot().0 as usize % 24] += 1;
    }

    /// Insert a record at the upper bound of its equal-timestamp run
    /// (preserving arrival order among ties, like a stable sort of the
    /// arrival sequence), unless an exact duplicate already sits in that
    /// run. Returns `false` for the dropped duplicate.
    pub fn insert(&mut self, r: ActionRecord) -> bool {
        let idx = {
            let times = self.cols.times();
            let t = r.time.millis();
            let idx = times.partition_point(|&x| x <= t);
            let mut j = idx;
            while j > 0 && times[j - 1] == t {
                if self.cols.row_equals_record(j - 1, &r) {
                    return false;
                }
                j -= 1;
            }
            idx
        };
        self.cols.insert(idx, &r);
        self.aggregate(&r);
        true
    }

    /// Rebuild a shard's partial aggregates from checkpointed records
    /// (the records are the durable state; the partials are derived).
    pub fn rebuild(records: Vec<ActionRecord>, binner: &Binner) -> Shard {
        let mut shard = Shard::new(binner);
        for r in &records {
            shard.cols.push(r);
            shard.aggregate(r);
        }
        shard
    }

    /// Assemble a shard from checkpointed records **and** checkpointed
    /// partial aggregates, skipping the per-record refold. The caller
    /// (checkpoint restore) is responsible for validating that the
    /// partials actually summarize the records before trusting them.
    pub fn from_parts(
        records: &[ActionRecord],
        partials: PlanPartials,
        hour_counts: [u64; 24],
    ) -> Shard {
        let mut cols = ColumnStore::with_capacity(records.len());
        for r in records {
            cols.push(r);
        }
        Shard {
            cols,
            partials,
            hour_counts,
        }
    }

    /// Fold this shard's hour counters into an accumulator.
    pub fn merge_hours_into(&self, acc: &mut [u64; 24]) {
        acc.merge(self.hour_counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_telemetry::record::{ActionType, Outcome, UserClass, UserId};
    use autosens_telemetry::time::SimTime;

    fn rec(t: i64, latency: f64, user: u64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(user),
            class: UserClass::Business,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    fn binner() -> Binner {
        autosens_core::AutoSensConfig::default().binner().unwrap()
    }

    #[test]
    fn inserts_sort_by_time_and_keep_arrival_order_on_ties() {
        let mut shard = Shard::new(&binner());
        assert!(shard.insert(rec(2000, 10.0, 1)));
        assert!(shard.insert(rec(1000, 20.0, 2)));
        assert!(shard.insert(rec(2000, 30.0, 3)));
        assert!(shard.insert(rec(2000, 40.0, 4)));
        let users: Vec<u64> = shard.cols.users().to_vec();
        // Time order first; the three t=2000 arrivals keep arrival order.
        assert_eq!(users, vec![2, 1, 3, 4]);
    }

    #[test]
    fn exact_duplicates_are_rejected_keep_first() {
        let mut shard = Shard::new(&binner());
        let r = rec(1000, 10.0, 1);
        assert!(shard.insert(r));
        assert!(!shard.insert(r));
        // Same time, different latency: not a duplicate.
        assert!(shard.insert(rec(1000, 11.0, 1)));
        assert_eq!(shard.len(), 2);
        assert_eq!(shard.hour_counts.iter().sum::<u64>(), 2);
        // Duplicates are not double-counted as loss-cell observations.
        assert_eq!(shard.partials.loss.total(), 2);
    }

    #[test]
    fn rebuild_matches_incremental_state() {
        let mut shard = Shard::new(&binner());
        for i in 0..50 {
            shard.insert(rec(i * 60_000, 50.0 + i as f64, i as u64 % 5));
        }
        let rebuilt = Shard::rebuild(shard.cols.to_records(), &binner());
        assert_eq!(rebuilt.cols.to_records(), shard.cols.to_records());
        assert_eq!(rebuilt.hour_counts, shard.hour_counts);
        assert_eq!(
            rebuilt.partials.partition.cell_actions,
            shard.partials.partition.cell_actions
        );
        for (a, b) in rebuilt
            .partials
            .partition
            .cells
            .iter()
            .zip(&shard.partials.partition.cells)
        {
            assert_eq!(a.counts(), b.counts());
        }
        assert_eq!(rebuilt.partials.loss, shard.partials.loss);
    }
}
