//! Time-bucketed shards with incremental per-shard analysis state.
//!
//! Every shard covers one `[bucket * shard_ms, (bucket + 1) * shard_ms)`
//! interval of event time and holds its records **sorted by time, stable
//! in arrival order among equal timestamps** — exactly the order batch
//! sanitize's stable sort produces. Because exact duplicates share a
//! timestamp, and equal timestamps never span a bucket boundary, keeping
//! duplicates out at insert time is equivalent to batch
//! `dedup_exact` / `dedup_exact_par` over the drained log.
//!
//! Alongside the records each shard maintains incremental partial
//! aggregates — the per-group biased histograms and α_T action counts of
//! [`GroupPartition`], plus per-local-hour counters — so a snapshot merges
//! shard partials instead of rescanning history. Histogram counts are
//! unit-weight (integer-valued) additions, so shard-merge order cannot
//! perturb the result: the merged partition is bit-identical to a batch
//! rescan.

use autosens_core::{GroupPartition, Grouping};
use autosens_exec::Mergeable;
use autosens_stats::binning::Binner;
use autosens_telemetry::record::ActionRecord;

/// Field-for-field identity at the bit level — the same key batch
/// [`TelemetryLog::dedup_exact`](autosens_telemetry::TelemetryLog::dedup_exact)
/// uses (latency compared as bits), so streaming dedup keeps exactly the
/// records batch dedup would keep.
pub(crate) fn same_record_exact(a: &ActionRecord, b: &ActionRecord) -> bool {
    a.time == b.time
        && a.action == b.action
        && a.latency_ms.to_bits() == b.latency_ms.to_bits()
        && a.user == b.user
        && a.class == b.class
        && a.tz_offset_ms == b.tz_offset_ms
        && a.outcome == b.outcome
}

/// One time bucket's records and partial aggregates.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    /// Records sorted by time, arrival-stable among equal timestamps.
    pub records: Vec<ActionRecord>,
    /// Incremental α partition: per-group biased histograms + α_T counts.
    pub partition: GroupPartition,
    /// Actions per local hour slot (merged across shards via the
    /// fixed-size-array [`Mergeable`] impl).
    pub hour_counts: [u64; 24],
}

impl Shard {
    pub fn new(binner: &Binner, grouping: Grouping) -> Shard {
        Shard {
            records: Vec::new(),
            partition: GroupPartition::empty(binner, grouping),
            hour_counts: [0u64; 24],
        }
    }

    /// Insert a record at the upper bound of its equal-timestamp run
    /// (preserving arrival order among ties, like a stable sort of the
    /// arrival sequence), unless an exact duplicate already sits in that
    /// run. Returns `false` for the dropped duplicate.
    pub fn insert(&mut self, r: ActionRecord, grouping: Grouping) -> bool {
        let idx = self.records.partition_point(|x| x.time <= r.time);
        let mut j = idx;
        while j > 0 && self.records[j - 1].time == r.time {
            if same_record_exact(&self.records[j - 1], &r) {
                return false;
            }
            j -= 1;
        }
        self.records.insert(idx, r);
        self.partition.record(grouping, &r);
        self.hour_counts[r.hour_slot().0 as usize % 24] += 1;
        true
    }

    /// Rebuild a shard's partial aggregates from checkpointed records
    /// (the records are the durable state; the partials are derived).
    pub fn rebuild(records: Vec<ActionRecord>, binner: &Binner, grouping: Grouping) -> Shard {
        let mut shard = Shard::new(binner, grouping);
        for r in &records {
            shard.partition.record(grouping, r);
            shard.hour_counts[r.hour_slot().0 as usize % 24] += 1;
        }
        shard.records = records;
        shard
    }

    /// Fold this shard's hour counters into an accumulator.
    pub fn merge_hours_into(&self, acc: &mut [u64; 24]) {
        acc.merge(self.hour_counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_telemetry::record::{ActionType, Outcome, UserClass, UserId};
    use autosens_telemetry::time::SimTime;

    fn rec(t: i64, latency: f64, user: u64) -> ActionRecord {
        ActionRecord {
            time: SimTime(t),
            action: ActionType::SelectMail,
            latency_ms: latency,
            user: UserId(user),
            class: UserClass::Business,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        }
    }

    fn binner() -> Binner {
        autosens_core::AutoSensConfig::default().binner().unwrap()
    }

    #[test]
    fn inserts_sort_by_time_and_keep_arrival_order_on_ties() {
        let mut shard = Shard::new(&binner(), Grouping::HourSlots);
        assert!(shard.insert(rec(2000, 10.0, 1), Grouping::HourSlots));
        assert!(shard.insert(rec(1000, 20.0, 2), Grouping::HourSlots));
        assert!(shard.insert(rec(2000, 30.0, 3), Grouping::HourSlots));
        assert!(shard.insert(rec(2000, 40.0, 4), Grouping::HourSlots));
        let users: Vec<u64> = shard.records.iter().map(|r| r.user.0).collect();
        // Time order first; the three t=2000 arrivals keep arrival order.
        assert_eq!(users, vec![2, 1, 3, 4]);
    }

    #[test]
    fn exact_duplicates_are_rejected_keep_first() {
        let mut shard = Shard::new(&binner(), Grouping::HourSlots);
        let r = rec(1000, 10.0, 1);
        assert!(shard.insert(r, Grouping::HourSlots));
        assert!(!shard.insert(r, Grouping::HourSlots));
        // Same time, different latency: not a duplicate.
        assert!(shard.insert(rec(1000, 11.0, 1), Grouping::HourSlots));
        assert_eq!(shard.records.len(), 2);
        assert_eq!(shard.hour_counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn rebuild_matches_incremental_state() {
        let grouping = Grouping::HourSlotsByDayKind;
        let mut shard = Shard::new(&binner(), grouping);
        for i in 0..50 {
            shard.insert(rec(i * 60_000, 50.0 + i as f64, i as u64 % 5), grouping);
        }
        let rebuilt = Shard::rebuild(shard.records.clone(), &binner(), grouping);
        assert_eq!(rebuilt.records, shard.records);
        assert_eq!(rebuilt.hour_counts, shard.hour_counts);
        assert_eq!(rebuilt.partition.n_actions, shard.partition.n_actions);
        for (a, b) in rebuilt.partition.biased.iter().zip(&shard.partition.biased) {
            assert_eq!(a.counts(), b.counts());
        }
    }
}
