//! The streaming analysis engine: out-of-order-tolerant intake over
//! time-bucketed shards, with batch-bit-identical snapshots.
//!
//! ## Equivalence with the batch pipeline
//!
//! Batch `AutoSens::analyze` sanitizes (filter → stable sort → exact
//! dedup) and then runs every downstream stage as a pure function of the
//! sanitized record sequence and the configuration, seeding one
//! `StdRng::seed_from_u64(config.seed)` after sanitize. The engine
//! reconstructs that exact sanitized sequence continuously:
//!
//! * the slice filter (plus the paper's successes-only restriction) is
//!   applied per record at ingest;
//! * each admitted record is placed in its time bucket at the upper bound
//!   of its equal-timestamp run — arrival order among ties, i.e. the
//!   stable-sort order of the arrival sequence;
//! * exact duplicates (which necessarily share a timestamp, hence a
//!   bucket) are counted and dropped at insert, keeping the first arrival
//!   exactly as batch dedup keeps the first post-sort occurrence.
//!
//! [`StreamEngine::snapshot`] concatenates shards in bucket order (already
//! globally sorted — no re-sort), merges the per-shard cached
//! [`PlanPartials`](autosens_core::PlanPartials) (the plan layer's
//! pre-RNG operator state), and enters the shared pipeline through the
//! single plan entry point
//! ([`AnalysisPlan::run`](autosens_core::AnalysisPlan::run) with a
//! prepared input), so after draining a finite log the report is
//! **bit-identical** to batch `analyze` on the same log — including
//! degradation bookkeeping and `autosens_core_*` metrics.
//!
//! ## What is incremental and what is not
//!
//! Snapshots are dirty-tracked end-to-end. The engine keeps a snapshot
//! cache (the merged [`ColumnStore`], the shard layout it was built
//! from, and the finished report) keyed by the intake event counter:
//!
//! * **No events since the last snapshot** → the cached report is
//!   returned verbatim (a clone of the same bytes), skipping the
//!   pipeline entirely; `autosens_stream_snapshot_reuse_total` counts
//!   these and [`StreamEngine::last_snapshot_reused`] exposes the flag.
//! * **Dirty** → only shards touched since the last snapshot are
//!   re-copied: the cached store is truncated to the longest unchanged
//!   `(bucket, len)` prefix of the shard layout (shards are insert-only
//!   and dup-rejecting, so an unchanged bucket+length pair means
//!   unchanged contents) and the changed suffix is re-appended.
//!
//! The per-cell biased histograms, action counts, and per-day loss-cell
//! observation counts are maintained incrementally per shard and merged
//! in O(shards · cells · bins). The RNG-bearing
//! operators — the group-conditional unbiased draws and the smoothing
//! fit — are recomputed per snapshot over the merged window: their draw
//! count and window layout depend on the window's global start/end, so
//! caching them per shard would change the random sequence and break bit
//! equality (see the `draws_rng` column of the
//! [operator table](autosens_core::plan::op)). Records themselves are
//! kept (they are the checkpoint's durable state and the unbiased
//! estimator's input).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use autosens_core::pipeline::{AnalysisReport, DecaySpec, Degradation};
use autosens_core::{
    AutoSens, AutoSensConfig, AutoSensError, PlanInput, PlanPartials, PreparedMeta, RunOptions,
};
use autosens_obs::{FlightKind, FlightRecorder, Recorder};
use autosens_stats::binning::Binner;
use autosens_telemetry::log::{ColumnStore, TelemetryLog};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::ActionRecord;

use crate::detector::{detect_regimes, DetectorConfig, RegimeShift};
use crate::error::StreamError;
use crate::shard::Shard;

/// Retained flight-recorder events (see [`FlightRecorder`]).
const FLIGHT_CAPACITY: usize = 256;

/// Streaming layer configuration on top of the analysis configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// The analysis configuration snapshots run under (also defines the
    /// histogram binner and confounder grouping).
    pub analysis: AutoSensConfig,
    /// Event-time width of one shard, ms. Equal timestamps always share a
    /// shard; smaller shards bound the insert shift of late arrivals.
    pub shard_ms: i64,
    /// How far behind the event-time frontier (max event time seen) a
    /// record may arrive and still be admitted. Older records are
    /// counted-and-dropped, never silently lost.
    pub allowed_lateness_ms: i64,
    /// Optional sliding-window retention: shards entirely older than
    /// `frontier - retain_ms` are evicted (with their records counted).
    /// `None` keeps everything — required for batch equivalence over a
    /// full log.
    pub retain_ms: Option<i64>,
    /// Optional online regime-shift detector (see
    /// [`DetectorConfig`]); `None` disables detection. Detection never
    /// perturbs the analysis — [`StreamEngine::run_detection`] is a
    /// separate, side-effect-free-on-the-report pass.
    #[serde(default)]
    pub detector: Option<DetectorConfig>,
    /// Optional half-life (event-time ms) for the exponentially-decayed
    /// windowed preference curve computed alongside the lifetime curve at
    /// every snapshot; `None` disables the windowed curve. Either way the
    /// lifetime curve's bytes are untouched.
    #[serde(default)]
    pub decay_half_life_ms: Option<i64>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            analysis: AutoSensConfig::default(),
            shard_ms: 3_600_000,
            allowed_lateness_ms: 3_600_000,
            retain_ms: None,
            detector: None,
            decay_half_life_ms: None,
        }
    }
}

impl StreamConfig {
    fn validate(&self) -> Result<(), StreamError> {
        if self.shard_ms <= 0 {
            return Err(StreamError::Corrupt(format!(
                "shard_ms must be > 0, got {}",
                self.shard_ms
            )));
        }
        if self.allowed_lateness_ms < 0 {
            return Err(StreamError::Corrupt(format!(
                "allowed_lateness_ms must be >= 0, got {}",
                self.allowed_lateness_ms
            )));
        }
        if let Some(retain) = self.retain_ms {
            if retain <= 0 {
                return Err(StreamError::Corrupt(format!(
                    "retain_ms must be > 0 when set, got {retain}"
                )));
            }
        }
        if let Some(det) = &self.detector {
            det.validate()?;
        }
        if let Some(hl) = self.decay_half_life_ms {
            if hl <= 0 {
                return Err(StreamError::Corrupt(format!(
                    "decay_half_life_ms must be > 0 when set, got {hl}"
                )));
            }
        }
        Ok(())
    }
}

/// What happened to one record offered to [`StreamEngine::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// Admitted into a shard.
    Admitted,
    /// Excluded by the slice filter (or a non-success outcome).
    Filtered,
    /// Arrived past the low-watermark; counted and dropped.
    Late,
    /// Exact duplicate of an already-admitted record; counted and dropped.
    Duplicate,
}

/// A point-in-time summary of the engine's intake counters and store shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStatus {
    /// Records offered to the engine (before filtering).
    pub events: u64,
    /// Records excluded by the slice filter.
    pub filtered: u64,
    /// Records dropped past the watermark.
    pub late: u64,
    /// Exact duplicates dropped at insert.
    pub duplicates: u64,
    /// Records dropped with evicted shards (sliding window only).
    pub evicted: u64,
    /// Records currently held across live shards.
    pub live_records: u64,
    /// Live shard count.
    pub shards: usize,
    /// Actions per local hour slot across live shards.
    pub hour_counts: [u64; 24],
    /// The event-time frontier (max event time admitted), if any.
    pub max_event_time_ms: Option<i64>,
    /// The current low-watermark (`frontier - allowed_lateness_ms`).
    pub watermark_ms: Option<i64>,
}

/// The snapshot cache: everything the previous snapshot built that the
/// next one can reuse. `events` is the dirty key — any offered event
/// (admitted or not) conservatively invalidates the report.
#[derive(Debug, Default)]
struct SnapCache {
    valid: bool,
    /// Intake event counter at the time the cache was built.
    events: u64,
    /// The merged, time-sorted store the last snapshot analyzed.
    store: ColumnStore,
    /// `(bucket, len)` per shard when `store` was built; the longest
    /// unchanged prefix of this layout is reused byte-for-byte.
    layout: Vec<(i64, usize)>,
    /// The finished report, returned verbatim while clean.
    report: Option<AnalysisReport>,
}

/// The streaming ingestion + incremental analysis engine. See the module
/// docs for the equivalence argument.
#[derive(Debug)]
pub struct StreamEngine {
    engine: AutoSens,
    config: StreamConfig,
    slice: Slice,
    filter: Slice,
    binner: Binner,
    shards: BTreeMap<i64, Shard>,
    max_event_time: Option<i64>,
    last_arrival: Option<i64>,
    saw_out_of_order: bool,
    events: u64,
    filtered: u64,
    late: u64,
    duplicates: u64,
    evicted: u64,
    records_in: u64,
    /// Records currently held across live shards, maintained on
    /// admit/evict so [`StreamEngine::status`] is O(1).
    live_records: u64,
    /// Fleet-wide actions per local hour slot, maintained on admit/evict
    /// so [`StreamEngine::status`] is O(1).
    hour_counts: [u64; 24],
    /// The dirty-tracked snapshot cache (interior mutability: snapshots
    /// take `&self`).
    snap: Mutex<SnapCache>,
    /// Whether the latest snapshot was served from the cache.
    last_snapshot_reused: AtomicBool,
    flight: FlightRecorder,
    /// Open run of consecutive late drops, folded into one
    /// [`FlightKind::LateDropBurst`] event when the run ends.
    open_late_burst: u64,
    /// (stream, signal, bucket_start_ms) of shifts already emitted to
    /// metrics / spans / the flight recorder — detection is a full
    /// deterministic recompute, so this set keeps re-runs from
    /// double-counting. Operational memory, not checkpointed (a restored
    /// process re-emits, exactly like the flight recorder starts empty).
    emitted_shifts: BTreeSet<(String, String, i64)>,
    last_shifts: Vec<RegimeShift>,
    /// Whether the latest snapshot had the loss-correction gate open
    /// (interior mutability: snapshots take `&self`). Edge-triggers one
    /// [`FlightKind::LossGateTrip`] event per open, not one per snapshot.
    loss_gate_open: std::sync::atomic::AtomicBool,
}

impl StreamEngine {
    /// Create an engine analyzing `slice` (successes only, as batch does)
    /// under `config`, recording spans and metrics into `recorder`.
    pub fn with_recorder(
        config: StreamConfig,
        slice: Slice,
        recorder: Recorder,
    ) -> Result<StreamEngine, StreamError> {
        config.validate()?;
        let binner = config.analysis.binner()?;
        let filter = slice.clone().successes();
        Ok(StreamEngine {
            engine: AutoSens::with_recorder(config.analysis.clone(), recorder),
            config,
            slice,
            filter,
            binner,
            shards: BTreeMap::new(),
            max_event_time: None,
            last_arrival: None,
            saw_out_of_order: false,
            events: 0,
            filtered: 0,
            late: 0,
            duplicates: 0,
            evicted: 0,
            records_in: 0,
            live_records: 0,
            hour_counts: [0u64; 24],
            snap: Mutex::new(SnapCache::default()),
            last_snapshot_reused: AtomicBool::new(false),
            flight: FlightRecorder::new(FLIGHT_CAPACITY),
            open_late_burst: 0,
            emitted_shifts: BTreeSet::new(),
            last_shifts: Vec::new(),
            loss_gate_open: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// [`StreamEngine::with_recorder`] with a disabled recorder.
    pub fn new(config: StreamConfig, slice: Slice) -> Result<StreamEngine, StreamError> {
        StreamEngine::with_recorder(config, slice, Recorder::disabled())
    }

    /// The streaming configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The analysis recorder (its metrics registry carries the
    /// `autosens_stream_*` and `autosens_core_*` counters).
    pub fn recorder(&self) -> &Recorder {
        self.engine.recorder()
    }

    /// Offer one arriving record. Returns what happened to it; the
    /// outcome is always counted in the `autosens_stream_*` metrics, so
    /// degraded intake is visible, never silent.
    pub fn push(&mut self, r: ActionRecord) -> Ingest {
        let recorder = self.engine.recorder().clone();
        let metrics = recorder.metrics();
        self.events += 1;
        metrics.counter("autosens_stream_events_total").inc();

        // Arrival-order bookkeeping mirrors batch sanitize's is_sorted
        // check on the raw input sequence (before any filtering).
        if let Some(prev) = self.last_arrival {
            if r.time.millis() < prev {
                self.saw_out_of_order = true;
            }
        }
        self.last_arrival = Some(r.time.millis());

        if !self.filter.matches(&r) {
            self.filtered += 1;
            metrics
                .counter("autosens_stream_filtered_events_total")
                .inc();
            return Ingest::Filtered;
        }

        let t = r.time.millis();
        if let Some(frontier) = self.max_event_time {
            let watermark = frontier - self.config.allowed_lateness_ms;
            if t < watermark {
                self.late += 1;
                self.open_late_burst += 1;
                metrics.counter("autosens_stream_late_events_total").inc();
                return Ingest::Late;
            }
            self.close_late_burst(frontier);
            metrics
                .gauge("autosens_stream_watermark_lag_ms")
                .set((frontier - t).max(0) as f64);
        } else {
            metrics.gauge("autosens_stream_watermark_lag_ms").set(0.0);
        }
        self.max_event_time = Some(self.max_event_time.unwrap_or(t).max(t));

        let bucket = t.div_euclid(self.config.shard_ms);
        let hour_slot = r.hour_slot().0 as usize % 24;
        let shard = self
            .shards
            .entry(bucket)
            .or_insert_with(|| Shard::new(&self.binner));
        if !shard.insert(r) {
            self.duplicates += 1;
            self.records_in += 1;
            metrics
                .counter("autosens_stream_duplicate_events_total")
                .inc();
            return Ingest::Duplicate;
        }
        self.records_in += 1;
        self.live_records += 1;
        self.hour_counts[hour_slot] += 1;

        if let Some(retain) = self.config.retain_ms {
            self.evict_older_than(self.max_event_time.unwrap_or(t) - retain);
        }
        Ingest::Admitted
    }

    /// Evict shards whose bucket ends at or before `cutoff_ms`.
    fn evict_older_than(&mut self, cutoff_ms: i64) {
        let metrics = self.engine.recorder().metrics();
        // BTreeMap iterates in bucket order; stop at the first live shard.
        while let Some((&bucket, shard)) = self.shards.iter().next() {
            let bucket_end = (bucket + 1) * self.config.shard_ms;
            if bucket_end > cutoff_ms {
                break;
            }
            let dropped = shard.len() as u64;
            self.evicted += dropped;
            self.live_records -= dropped;
            for (acc, &n) in self.hour_counts.iter_mut().zip(&shard.hour_counts) {
                *acc -= n;
            }
            metrics
                .counter("autosens_stream_evicted_records_total")
                .add(dropped);
            self.shards.remove(&bucket);
        }
    }

    /// Close an open run of consecutive late drops into one flight event.
    fn close_late_burst(&mut self, at_ms: i64) {
        if self.open_late_burst > 0 {
            self.flight.record(
                FlightKind::LateDropBurst,
                at_ms,
                format!(
                    "{} consecutive events past the watermark",
                    self.open_late_burst
                ),
            );
            self.open_late_burst = 0;
        }
    }

    /// The engine's flight recorder: a bounded ring of structured runtime
    /// events (regime shifts, late-drop bursts, checkpoint ops). Cloning
    /// the handle is cheap; the ring is shared. Deliberately not carried
    /// through checkpoint/restore — see [`FlightRecorder`]'s module docs.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The shifts found by the most recent [`StreamEngine::run_detection`].
    pub fn last_shifts(&self) -> &[RegimeShift] {
        &self.last_shifts
    }

    /// Per-shard watermark lag: `(bucket_start_ms, records, lag_ms)` where
    /// `lag_ms` is how far the shard's newest record trails the frontier.
    pub fn shard_lags(&self) -> Vec<(i64, u64, i64)> {
        let frontier = self.max_event_time.unwrap_or(0);
        self.shards
            .iter()
            .map(|(&bucket, shard)| {
                let newest = shard.cols.times().last().copied().unwrap_or(frontier);
                (
                    bucket * self.config.shard_ms,
                    shard.len() as u64,
                    (frontier - newest).max(0),
                )
            })
            .collect()
    }

    /// Run the online regime-shift detector over the live window (a no-op
    /// returning no shifts when [`StreamConfig::detector`] is `None`).
    ///
    /// Detection is a full deterministic recompute over the merged
    /// time-sorted view — a pure function of the admitted records and the
    /// detector config, so any thread count, restart, or replay produces
    /// bit-identical shifts. Shifts not seen before are emitted once each:
    /// an `autosens_regime_shift_total{stream=…}` counter increment, a
    /// shared/local classification counter, a `regime_shift` span, and a
    /// flight-recorder event; per-stream `autosens_regime_state` gauges
    /// track each stream's running shift count.
    pub fn run_detection(&mut self) -> Result<Vec<RegimeShift>, StreamError> {
        let Some(det) = self.config.detector.clone() else {
            self.last_shifts.clear();
            return Ok(Vec::new());
        };
        // Merge the shard columns the detector needs (shards concatenate
        // in bucket order into already time-sorted columns).
        let total: usize = self.shards.values().map(|s| s.len()).sum();
        let mut times = Vec::with_capacity(total);
        let mut latencies = Vec::with_capacity(total);
        let mut actions = Vec::with_capacity(total);
        for shard in self.shards.values() {
            times.extend_from_slice(shard.cols.times());
            latencies.extend_from_slice(shard.cols.latencies());
            actions.extend_from_slice(shard.cols.actions());
        }
        let shifts = detect_regimes(&times, &latencies, &actions, &det)?;

        let recorder = self.engine.recorder();
        let metrics = recorder.metrics();
        let mut per_stream: BTreeMap<&str, u64> = BTreeMap::new();
        for s in &shifts {
            *per_stream.entry(s.stream.as_str()).or_default() += 1;
            let key = (s.stream.clone(), s.signal.clone(), s.bucket_start_ms);
            if !self.emitted_shifts.insert(key) {
                continue;
            }
            metrics
                .counter_labeled("autosens_regime_shift_total", &[("stream", &s.stream)])
                .inc();
            metrics
                .counter(if s.shared {
                    "autosens_regime_shared_total"
                } else {
                    "autosens_regime_local_total"
                })
                .inc();
            let mut span = recorder.root("regime_shift");
            span.field("stream", s.stream.clone());
            span.field("signal", s.signal.clone());
            span.field("direction", s.direction.clone());
            span.field("bucket_start_ms", s.bucket_start_ms as u64);
            span.field("magnitude_z", s.magnitude_z);
            span.field("shared", u64::from(s.shared));
            span.finish();
            self.flight.record(
                FlightKind::RegimeShift,
                s.detected_at_ms,
                format!(
                    "stream={} signal={} dir={} z={:.1}{}",
                    s.stream,
                    s.signal,
                    s.direction,
                    s.magnitude_z,
                    if s.shared { " shared" } else { "" }
                ),
            );
        }
        for (stream, count) in per_stream {
            metrics
                .gauge_labeled("autosens_regime_state", &[("stream", stream)])
                .set(count as f64);
        }
        self.last_shifts = shifts.clone();
        Ok(shifts)
    }

    /// The current intake counters and store shape. O(1): the live-record
    /// and hour counters are maintained incrementally on admit/evict, not
    /// recomputed by walking the shards.
    pub fn status(&self) -> StreamStatus {
        StreamStatus {
            events: self.events,
            filtered: self.filtered,
            late: self.late,
            duplicates: self.duplicates,
            evicted: self.evicted,
            live_records: self.live_records,
            shards: self.shards.len(),
            hour_counts: self.hour_counts,
            max_event_time_ms: self.max_event_time,
            watermark_ms: self
                .max_event_time
                .map(|t| t - self.config.allowed_lateness_ms),
        }
    }

    /// Records offered to the engine so far (the snapshot cache's dirty
    /// key: an unchanged count means the cached report is still exact).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Whether the most recent [`StreamEngine::snapshot`] was served from
    /// the cache (no events since the snapshot before it).
    pub fn last_snapshot_reused(&self) -> bool {
        self.last_snapshot_reused.load(Ordering::Relaxed)
    }

    /// Analyze the live window by merging shard partials into the shared
    /// post-sanitize pipeline. After draining a finite log (no lateness
    /// drops, no eviction), the result is bit-identical to batch
    /// `AutoSens::analyze` over the same log.
    ///
    /// Snapshots are dirty-tracked (see the module docs): with no events
    /// since the last snapshot the cached report is returned verbatim,
    /// and a dirty snapshot re-copies only the shards past the longest
    /// unchanged `(bucket, len)` prefix of the cached store.
    pub fn snapshot(&self) -> Result<AnalysisReport, AutoSensError> {
        let recorder = self.engine.recorder();
        let mut cache = self.snap.lock().expect("snapshot cache lock poisoned");
        if cache.valid && cache.events == self.events {
            if let Some(report) = &cache.report {
                recorder
                    .metrics()
                    .counter("autosens_stream_snapshot_reuse_total")
                    .inc();
                self.last_snapshot_reused.store(true, Ordering::Relaxed);
                return Ok(report.clone());
            }
        }
        self.last_snapshot_reused.store(false, Ordering::Relaxed);

        let mut span = recorder.root("stream_flush");
        span.field("events", self.events);
        span.field("shards", self.shards.len());

        // Prefix sums over shard lengths size the merged columns exactly;
        // shards concatenate in bucket order into an already-sorted store,
        // column by column — no per-record copies. The cached store's
        // longest unchanged (bucket, len) shard prefix is kept in place:
        // shards are insert-only and dup-rejecting, so an unchanged
        // bucket+length pair means unchanged contents.
        let layout: Vec<(i64, usize)> = self.shards.iter().map(|(&b, s)| (b, s.len())).collect();
        let total: usize = layout.iter().map(|&(_, n)| n).sum();
        span.field("records", total);
        let mut prefix_shards = 0usize;
        let mut prefix_rows = 0usize;
        if cache.valid {
            for (old, new) in cache.layout.iter().zip(&layout) {
                if old != new {
                    break;
                }
                prefix_shards += 1;
                prefix_rows += new.1;
            }
        }
        span.field("reused_rows", prefix_rows);
        let mut cols = std::mem::take(&mut cache.store);
        cols.truncate(prefix_rows);
        let mut partials = PlanPartials::empty(&self.binner);
        for (i, shard) in self.shards.values().enumerate() {
            if i >= prefix_shards {
                cols.extend_from(&shard.cols);
            }
            partials.try_merge(&shard.partials)?;
        }
        let log = TelemetryLog::from_columns(cols);

        // Degradations in the order batch sanitize reports them, plus the
        // streaming-only lateness drop (absent in the equivalence regime).
        let mut degradations = Vec::new();
        if self.saw_out_of_order {
            degradations.push(Degradation {
                stage: "sanitize".into(),
                detail: "records arrived out of time order; re-sorted".into(),
            });
        }
        if self.duplicates > 0 {
            let removed = self.duplicates;
            degradations.push(Degradation {
                stage: "sanitize".into(),
                detail: format!("removed {removed} exact duplicate records"),
            });
        }
        if self.late > 0 {
            degradations.push(Degradation {
                stage: "stream".into(),
                detail: format!(
                    "{} events arrived past the {} ms watermark and were dropped",
                    self.late, self.config.allowed_lateness_ms
                ),
            });
        }
        if self.evicted > 0 {
            degradations.push(Degradation {
                stage: "stream".into(),
                detail: format!(
                    "{} records evicted by the sliding window; the curve covers the live window only",
                    self.evicted
                ),
            });
        }

        recorder
            .metrics()
            .counter("autosens_stream_flushes_total")
            .inc();
        span.finish();

        // The windowed decayed curve anchors its frontier at the event-time
        // frontier, so an idle stream's windowed mass keeps decaying between
        // snapshots of the same data only if new (filtered) events advance
        // the frontier — a pure function of the stream contents either way.
        let decay = self
            .config
            .decay_half_life_ms
            .map(|half_life_ms| DecaySpec {
                half_life_ms,
                frontier_ms: self.max_event_time.unwrap_or(0),
            });

        let meta = PreparedMeta {
            degradations,
            records_in: self.records_in as usize,
            records_dropped: self.duplicates as usize,
            partials: Some(partials),
            decay,
        };
        let report = self
            .engine
            .plan()
            .run(PlanInput::prepared(&log, meta), RunOptions::default())
            .map(|out| out.report)?;
        match &report.loss {
            Some(loss) => {
                if !self.loss_gate_open.swap(true, Ordering::Relaxed) {
                    self.flight.record(
                        FlightKind::LossGateTrip,
                        self.max_event_time.unwrap_or(0),
                        format!(
                            "overall rate {:.3}, {} cells flagged",
                            loss.overall_rate,
                            loss.cells.len()
                        ),
                    );
                }
            }
            None => self.loss_gate_open.store(false, Ordering::Relaxed),
        }
        cache.store = log.into_columns();
        cache.layout = layout;
        cache.events = self.events;
        cache.report = Some(report.clone());
        cache.valid = true;
        Ok(report)
    }

    /// Serialize the engine's durable state. The shard records are the
    /// state of record; the cached plan-layer partials ride along and are
    /// cross-validated against the records on restore (see
    /// [`crate::checkpoint`]). `source_offset` is the tailed file's
    /// checkpointed byte offset (pass 0 when not tailing a file).
    pub fn checkpoint(&self, source_offset: u64) -> crate::checkpoint::Checkpoint {
        self.flight.record(
            FlightKind::CheckpointSaved,
            self.max_event_time.unwrap_or(0),
            format!("{} shards, offset {source_offset}", self.shards.len()),
        );
        crate::checkpoint::Checkpoint {
            version: crate::checkpoint::CHECKPOINT_VERSION,
            config: self.config.clone(),
            max_event_time_ms: self.max_event_time,
            last_arrival_ms: self.last_arrival,
            saw_out_of_order: self.saw_out_of_order,
            events: self.events,
            filtered: self.filtered,
            late: self.late,
            duplicates: self.duplicates,
            evicted: self.evicted,
            records_in: self.records_in,
            source_offset,
            shards: self
                .shards
                .iter()
                .map(|(&bucket, shard)| crate::checkpoint::ShardCheckpoint {
                    bucket,
                    records: shard.cols.to_records(),
                    partials: Some(crate::checkpoint::ShardPartials::capture(shard)),
                })
                .collect(),
        }
    }

    /// Rebuild an engine from a checkpoint, resuming mid-flight. The
    /// slice is not serialized (it can hold arbitrary user sets); the
    /// caller re-supplies the slice it checkpointed under.
    pub fn restore(
        checkpoint: crate::checkpoint::Checkpoint,
        slice: Slice,
        recorder: Recorder,
    ) -> Result<StreamEngine, StreamError> {
        checkpoint.validate()?;
        let mut engine = StreamEngine::with_recorder(checkpoint.config, slice, recorder)?;
        for sc in checkpoint.shards {
            for w in sc.records.windows(2) {
                if w[1].time < w[0].time {
                    return Err(StreamError::Corrupt(format!(
                        "shard {} records are not time-sorted",
                        sc.bucket
                    )));
                }
            }
            for r in &sc.records {
                let bucket = r.time.millis().div_euclid(engine.config.shard_ms);
                if bucket != sc.bucket {
                    return Err(StreamError::Corrupt(format!(
                        "record at {} ms does not belong to shard {}",
                        r.time.millis(),
                        sc.bucket
                    )));
                }
            }
            // Checkpointed partials skip the per-record refold — but only
            // after validating their totals against the records; absent
            // partials (pre-partials checkpoints) rebuild from records.
            let shard = match &sc.partials {
                Some(p) => p.restore(sc.bucket, &sc.records, &engine.binner)?,
                None => Shard::rebuild(sc.records, &engine.binner),
            };
            engine.shards.insert(sc.bucket, shard);
        }
        for shard in engine.shards.values() {
            engine.live_records += shard.len() as u64;
            shard.merge_hours_into(&mut engine.hour_counts);
        }
        engine.max_event_time = checkpoint.max_event_time_ms;
        engine.last_arrival = checkpoint.last_arrival_ms;
        engine.saw_out_of_order = checkpoint.saw_out_of_order;
        engine.events = checkpoint.events;
        engine.filtered = checkpoint.filtered;
        engine.late = checkpoint.late;
        engine.duplicates = checkpoint.duplicates;
        engine.evicted = checkpoint.evicted;
        engine.records_in = checkpoint.records_in;
        // The flight recorder starts empty by design (operational memory of
        // this process); the restore itself is its first entry.
        engine.flight.record(
            FlightKind::CheckpointRestored,
            engine.max_event_time.unwrap_or(0),
            format!("{} shards", engine.shards.len()),
        );
        Ok(engine)
    }

    /// The slice this engine was created with (handy for labels).
    pub fn slice(&self) -> &Slice {
        &self.slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_sim::{generate, Scenario, SimConfig};

    /// The O(1) status counters (maintained on admit/evict) must equal a
    /// full shard walk at every point of an insert/evict interleaving.
    #[test]
    fn incremental_status_counters_match_a_shard_walk() {
        let (log, _) = generate(&SimConfig::scenario(Scenario::Smoke)).unwrap();
        let cfg = StreamConfig {
            shard_ms: 6 * 3_600_000,
            retain_ms: Some(3 * 24 * 3_600_000), // force evictions mid-run
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::new(cfg, Slice::all()).unwrap();
        let check = |engine: &StreamEngine| {
            let mut hour_counts = [0u64; 24];
            let mut live = 0u64;
            for shard in engine.shards.values() {
                shard.merge_hours_into(&mut hour_counts);
                live += shard.len() as u64;
            }
            let status = engine.status();
            assert_eq!(status.live_records, live, "live_records drifted");
            assert_eq!(status.hour_counts, hour_counts, "hour_counts drifted");
        };
        for (i, r) in log.iter().enumerate() {
            engine.push(r);
            if i % 997 == 0 {
                check(&engine);
            }
        }
        check(&engine);
        assert!(
            engine.status().evicted > 0,
            "retention produced no evictions — the evict path went untested"
        );
    }
}
