//! Online regime-shift detection over the streaming window.
//!
//! The paper's whole premise is that latency regimes shift naturally; this
//! module notices those shifts *as they happen* instead of averaging them
//! away. Per activity stream (the pooled slice plus one stream per
//! analyzed action type) it buckets event time, summarizes each bucket by
//! two robust statistics — the median log-latency **level** and the
//! MSD/MAD **locality** ratio — and runs a two-sided CUSUM on
//! seasonally-differenced robust z-scores of each statistic.
//!
//! ## Detector math (DESIGN.md §6g)
//!
//! * Bucket `b` of width `bucket_ms` collects the latencies of its
//!   records; buckets with fewer than `min_bucket_n` samples are skipped.
//! * The seasonal reference of bucket `b` is the median of the same
//!   time-of-day bucket on the previous `min_ref_days..=max_ref_days`
//!   days, so the diurnal cycle cancels instead of alarming every rush
//!   hour. Residual `r_b = stat_b - reference_b`.
//! * Residuals are standardized by a single robust scale per stream and
//!   signal: `s = 1.4826 · MAD(r)`. `z_b = (r_b - offset) / s`, where
//!   `offset` re-anchors after each confirmed shift (median residual of
//!   the trailing `reanchor` buckets), so a persistent level change alarms
//!   once per boundary, not once per bucket.
//! * Two-sided CUSUM: `S⁺ ← max(0, S⁺ + z - k)`, `S⁻ ← max(0, S⁻ - z -
//!   k)` with drift `k`; an alarm fires when either side exceeds the
//!   threshold `h`.
//! * `h` is deterministic and seedable: when `threshold` is 0, it is
//!   calibrated by Monte Carlo — `calibration_reps` null runs of i.i.d.
//!   standard normal z-series of the same length (Box–Muller over
//!   `StdRng::seed_from_u64(seed ⊕ mix(rep))`), taking the largest null
//!   CUSUM excursion seen and scaling it by `threshold_scale` to absorb
//!   the residual autocorrelation a real stream carries.
//!
//! An alarm is classified **shared** when alarms from ≥ 2 distinct
//! per-action streams land in the same (or adjacent) calendar bucket —
//! the cross-slice correlation of *Less is More*: a shared anomaly points
//! at the service, a slice-local one at the slice.
//!
//! Detection is a pure function of the merged record sequence and the
//! config — no wall clock, no global RNG — so any thread count, restart,
//! or replay produces bit-identical shifts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use autosens_stats::succdiff::msd_mad_ratio;
use autosens_telemetry::record::ActionType;

use crate::error::StreamError;

const DAY_MS: i64 = 86_400_000;

fn default_bucket_ms() -> i64 {
    15 * 60_000
}
fn default_min_bucket_n() -> usize {
    8
}
fn default_min_ref_days() -> usize {
    2
}
fn default_max_ref_days() -> usize {
    7
}
fn default_drift() -> f64 {
    0.75
}
fn default_threshold_scale() -> f64 {
    1.5
}
fn default_calibration_reps() -> usize {
    64
}
fn default_reanchor() -> usize {
    8
}
fn default_min_scale() -> f64 {
    0.02
}

/// Configuration of the regime-shift detector. Defaults are tuned so a
/// clean simulated stream (diurnal cycle + AR(1) noise, no incidents)
/// produces zero alarms while a planted congestion regime is caught within
/// a few buckets — the `regime` experiment scores exactly that.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Event-time bucket width, ms. Must divide a day (the seasonal
    /// reference aligns buckets across days).
    #[serde(default = "default_bucket_ms")]
    pub bucket_ms: i64,
    /// Minimum samples for a bucket to be scored.
    #[serde(default = "default_min_bucket_n")]
    pub min_bucket_n: usize,
    /// Minimum prior same-time-of-day buckets required before a bucket is
    /// scored (warm-up: the first `min_ref_days` days never alarm).
    #[serde(default = "default_min_ref_days")]
    pub min_ref_days: usize,
    /// How many prior days the seasonal reference may look back.
    #[serde(default = "default_max_ref_days")]
    pub max_ref_days: usize,
    /// CUSUM drift `k`, in robust-z units; shifts smaller than `k·σ` per
    /// bucket are ignored by design.
    #[serde(default = "default_drift")]
    pub drift: f64,
    /// CUSUM threshold `h`; 0 (the default) calibrates it from
    /// `calibration_reps` seeded null runs.
    #[serde(default)]
    pub threshold: f64,
    /// Safety multiplier applied to the calibrated threshold.
    #[serde(default = "default_threshold_scale")]
    pub threshold_scale: f64,
    /// Null Monte Carlo replicates for calibration.
    #[serde(default = "default_calibration_reps")]
    pub calibration_reps: usize,
    /// Post-alarm cooldown, in buckets: after an alarm the detector skips
    /// this many buckets, then re-anchors the level to their median — so
    /// one boundary alarms once instead of ringing while the statistics
    /// settle.
    #[serde(default = "default_reanchor")]
    pub reanchor: usize,
    /// Floor on the robust scale `s` (in the statistic's own units —
    /// log-latency for `level`): shifts smaller than this are noise by
    /// definition, and a near-constant stream cannot manufacture huge
    /// z-scores out of a microscopic MAD.
    #[serde(default = "default_min_scale")]
    pub min_scale: f64,
    /// Seed for threshold calibration (independent of the analysis seed).
    #[serde(default)]
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            bucket_ms: default_bucket_ms(),
            min_bucket_n: default_min_bucket_n(),
            min_ref_days: default_min_ref_days(),
            max_ref_days: default_max_ref_days(),
            drift: default_drift(),
            threshold: 0.0,
            threshold_scale: default_threshold_scale(),
            calibration_reps: default_calibration_reps(),
            reanchor: default_reanchor(),
            min_scale: default_min_scale(),
            seed: 0,
        }
    }
}

impl DetectorConfig {
    /// Structural validation.
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.bucket_ms <= 0 || DAY_MS % self.bucket_ms != 0 {
            return Err(StreamError::Corrupt(format!(
                "detector bucket_ms must be > 0 and divide a day, got {}",
                self.bucket_ms
            )));
        }
        if self.min_ref_days == 0 || self.min_ref_days > self.max_ref_days {
            return Err(StreamError::Corrupt(format!(
                "detector needs 1 <= min_ref_days <= max_ref_days, got {}..{}",
                self.min_ref_days, self.max_ref_days
            )));
        }
        // NaN-rejecting: a NaN fails every comparison, so it must be
        // checked explicitly rather than via a negated comparison.
        if self.drift.is_nan()
            || self.drift < 0.0
            || self.threshold.is_nan()
            || self.threshold < 0.0
            || self.threshold_scale.is_nan()
            || self.threshold_scale <= 0.0
        {
            return Err(StreamError::Corrupt(
                "detector drift/threshold must be >= 0 and threshold_scale > 0".into(),
            ));
        }
        if self.threshold == 0.0 && self.calibration_reps == 0 {
            return Err(StreamError::Corrupt(
                "detector threshold 0 requires calibration_reps > 0".into(),
            ));
        }
        if self.reanchor == 0 {
            return Err(StreamError::Corrupt("detector reanchor must be > 0".into()));
        }
        if self.min_scale.is_nan() || self.min_scale < 0.0 {
            return Err(StreamError::Corrupt(
                "detector min_scale must be >= 0".into(),
            ));
        }
        Ok(())
    }
}

/// One confirmed regime boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeShift {
    /// `"pooled"` or the action-type name of the stream that alarmed.
    pub stream: String,
    /// `"level"` (median log-latency) or `"locality"` (MSD/MAD ratio).
    pub signal: String,
    /// Start of the event-time bucket in which the alarm fired, ms.
    pub bucket_start_ms: i64,
    /// The event-time instant detection became possible (bucket end), ms.
    pub detected_at_ms: i64,
    /// `"up"` (statistic rose) or `"down"`.
    pub direction: String,
    /// The CUSUM excursion at alarm time, in robust-z units.
    pub magnitude_z: f64,
    /// `true` when ≥ 2 distinct per-action streams alarm in the same or an
    /// adjacent calendar bucket — a shared (service-wide) anomaly rather
    /// than a slice-local one.
    pub shared: bool,
}

/// Median of a non-empty slice (midpoint-averaged for even lengths).
fn median(values: &[f64]) -> f64 {
    debug_assert!(!values.is_empty());
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite statistic"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// The largest null CUSUM excursion over `reps` seeded standard-normal
/// series of length `len`, times `threshold_scale`.
fn calibrated_threshold(cfg: &DetectorConfig, len: usize) -> f64 {
    let mut worst = 0.0f64;
    for rep in 0..cfg.calibration_reps {
        let mix = (rep as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ mix);
        let (mut sp, mut sm) = (0.0f64, 0.0f64);
        for _ in 0..len {
            // Box–Muller: one standard normal per pair of uniforms.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            sp = (sp + z - cfg.drift).max(0.0);
            sm = (sm - z - cfg.drift).max(0.0);
            worst = worst.max(sp).max(sm);
        }
    }
    worst * cfg.threshold_scale
}

/// Score one (stream, signal) statistic series: seasonal differencing,
/// robust standardization, then the re-anchoring two-sided CUSUM.
fn score_series(
    series: &[(i64, f64)],
    slots_per_day: i64,
    cfg: &DetectorConfig,
    stream: &str,
    signal: &str,
    out: &mut Vec<RegimeShift>,
) {
    use std::collections::BTreeMap;
    let by_bucket: BTreeMap<i64, f64> = series.iter().copied().collect();
    let mut residuals: Vec<(i64, f64)> = Vec::new();
    for &(b, v) in series {
        let refs: Vec<f64> = (1..=cfg.max_ref_days as i64)
            .filter_map(|d| by_bucket.get(&(b - d * slots_per_day)).copied())
            .collect();
        if refs.len() >= cfg.min_ref_days {
            residuals.push((b, v - median(&refs)));
        }
    }
    if residuals.len() < 2 {
        return;
    }
    let rs: Vec<f64> = residuals.iter().map(|&(_, r)| r).collect();
    let med = median(&rs);
    let devs: Vec<f64> = rs.iter().map(|r| (r - med).abs()).collect();
    let scale = (1.4826 * median(&devs)).max(cfg.min_scale);
    if scale.is_nan() || scale <= 1e-12 {
        return; // a constant statistic has no regimes to detect
    }
    let h = if cfg.threshold > 0.0 {
        cfg.threshold
    } else {
        calibrated_threshold(cfg, residuals.len())
    };
    let (mut sp, mut sm) = (0.0f64, 0.0f64);
    let mut offset = 0.0f64;
    let mut i = 0usize;
    while i < residuals.len() {
        let (b, r) = residuals[i];
        let z = (r - offset) / scale;
        sp = (sp + z - cfg.drift).max(0.0);
        sm = (sm - z - cfg.drift).max(0.0);
        if sp > h || sm > h {
            let up = sp >= sm;
            out.push(RegimeShift {
                stream: stream.to_string(),
                signal: signal.to_string(),
                bucket_start_ms: b * cfg.bucket_ms,
                detected_at_ms: (b + 1) * cfg.bucket_ms,
                direction: if up { "up" } else { "down" }.to_string(),
                magnitude_z: sp.max(sm),
                shared: false,
            });
            // Cooldown: skip the next `reanchor` buckets, then re-anchor
            // the level to their median, so one boundary alarms once
            // instead of ringing while the statistics settle.
            let end = (i + cfg.reanchor).min(residuals.len() - 1);
            let settled: Vec<f64> = residuals[i..=end].iter().map(|&(_, r)| r).collect();
            offset = median(&settled);
            sp = 0.0;
            sm = 0.0;
            i = end + 1;
            continue;
        }
        i += 1;
    }
}

/// Detect regime shifts over a merged, time-sorted record sequence given
/// as parallel columns. Pure and deterministic: the output is a function
/// of `(times, latencies, actions, cfg)` only.
pub fn detect_regimes(
    times: &[i64],
    latencies: &[f64],
    actions: &[u8],
    cfg: &DetectorConfig,
) -> Result<Vec<RegimeShift>, StreamError> {
    use std::collections::BTreeMap;
    cfg.validate()?;
    debug_assert_eq!(times.len(), latencies.len());
    debug_assert_eq!(times.len(), actions.len());
    let slots_per_day = DAY_MS / cfg.bucket_ms;

    // Streams: pooled plus one per analyzed action type present.
    let mut streams: Vec<(String, Option<u8>)> = vec![("pooled".into(), None)];
    for a in ActionType::analyzed() {
        if actions.contains(&a.code()) {
            streams.push((a.name().to_string(), Some(a.code())));
        }
    }

    let mut shifts: Vec<RegimeShift> = Vec::new();
    for (name, code) in &streams {
        // Bucket the stream's latencies by event time.
        let mut buckets: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
        for i in 0..times.len() {
            if code.is_none_or(|c| actions[i] == c) {
                buckets
                    .entry(times[i].div_euclid(cfg.bucket_ms))
                    .or_default()
                    .push(latencies[i]);
            }
        }
        let mut level: Vec<(i64, f64)> = Vec::new();
        let mut locality: Vec<(i64, f64)> = Vec::new();
        for (&b, lats) in &buckets {
            if lats.len() < cfg.min_bucket_n {
                continue;
            }
            let logs: Vec<f64> = lats.iter().map(|&l| l.max(1e-9).ln()).collect();
            level.push((b, median(&logs)));
            if let Ok(ratio) = msd_mad_ratio(lats) {
                locality.push((b, ratio));
            }
        }
        score_series(&level, slots_per_day, cfg, name, "level", &mut shifts);
        score_series(&locality, slots_per_day, cfg, name, "locality", &mut shifts);
    }

    // Cross-slice correlation: a shift is shared when distinct per-action
    // streams alarm in the same or an adjacent calendar bucket.
    let action_alarms: Vec<(String, i64)> = shifts
        .iter()
        .filter(|s| s.stream != "pooled")
        .map(|s| (s.stream.clone(), s.bucket_start_ms / cfg.bucket_ms))
        .collect();
    for s in &mut shifts {
        let b = s.bucket_start_ms / cfg.bucket_ms;
        let mut nearby: Vec<&str> = action_alarms
            .iter()
            .filter(|(_, ab)| (ab - b).abs() <= 1)
            .map(|(stream, _)| stream.as_str())
            .collect();
        nearby.sort_unstable();
        nearby.dedup();
        s.shared = nearby.len() >= 2;
    }
    shifts.sort_by(|a, b| {
        (a.detected_at_ms, &a.stream, &a.signal).cmp(&(b.detected_at_ms, &b.stream, &b.signal))
    });
    Ok(shifts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise in [-amp, amp] without an RNG.
    fn jitter(i: i64, amp: f64) -> f64 {
        let x = ((i.wrapping_mul(2654435761) >> 7) % 1000) as f64 / 1000.0;
        (x - 0.5) * 2.0 * amp
    }

    /// A synthetic stream: one record per 30 s around 200 ms latency with a
    /// diurnal swing, multiplied by `mult(t_ms)` — regimes are
    /// multiplicative in latency (additive in log space), matching how the
    /// simulator plants them.
    fn synth(days: i64, mult: impl Fn(i64) -> f64) -> (Vec<i64>, Vec<f64>, Vec<u8>) {
        let mut times = Vec::new();
        let mut lats = Vec::new();
        let mut actions = Vec::new();
        let mut i = 0i64;
        let mut t = 0i64;
        while t < days * DAY_MS {
            let phase = (t % DAY_MS) as f64 / DAY_MS as f64 * std::f64::consts::TAU;
            let diurnal = 40.0 * phase.sin();
            times.push(t);
            lats.push(((200.0 + diurnal + jitter(i, 12.0)) * mult(t)).max(1.0));
            actions.push(ActionType::SelectMail.code());
            t += 30_000;
            i += 1;
        }
        (times, lats, actions)
    }

    #[test]
    fn clean_stream_produces_zero_alarms() {
        let (times, lats, actions) = synth(8, |_| 1.0);
        let shifts = detect_regimes(&times, &lats, &actions, &DetectorConfig::default()).unwrap();
        assert!(shifts.is_empty(), "false positives: {shifts:?}");
    }

    #[test]
    fn planted_step_is_detected_up_then_down_within_bound() {
        // Step up 4 days in, back down at day 6: latency ×2.5 in between.
        let on = 4 * DAY_MS;
        let off = 6 * DAY_MS;
        let (times, lats, actions) = synth(8, |t| if (on..off).contains(&t) { 2.5 } else { 1.0 });
        let cfg = DetectorConfig::default();
        let shifts = detect_regimes(&times, &lats, &actions, &cfg).unwrap();
        let level: Vec<&RegimeShift> = shifts
            .iter()
            .filter(|s| s.stream == "pooled" && s.signal == "level")
            .collect();
        let up = level
            .iter()
            .find(|s| s.direction == "up")
            .expect("missing up alarm");
        let down = level
            .iter()
            .find(|s| s.direction == "down")
            .expect("missing down alarm");
        // Detection latency bound: 8 buckets (2 hours at the default
        // 15-minute bucket) — the bound DESIGN.md documents and ci.sh
        // enforces through the regime experiment.
        let bound = 8 * cfg.bucket_ms;
        assert!(
            up.detected_at_ms >= on && up.detected_at_ms - on <= bound,
            "up detected at {} for boundary {on}",
            up.detected_at_ms
        );
        assert!(
            down.detected_at_ms >= off && down.detected_at_ms - off <= bound,
            "down detected at {} for boundary {off}",
            down.detected_at_ms
        );
    }

    #[test]
    fn detection_is_deterministic() {
        let on = 4 * DAY_MS;
        let (times, lats, actions) = synth(6, |t| if t >= on { 2.2 } else { 1.0 });
        let cfg = DetectorConfig::default();
        let a = detect_regimes(&times, &lats, &actions, &cfg).unwrap();
        let b = detect_regimes(&times, &lats, &actions, &cfg).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn multi_stream_alarms_are_classified_shared() {
        // Two action streams shift at the same instant → shared anomaly.
        let on = 4 * DAY_MS;
        let (mut times, mut lats, mut actions) = synth(7, |t| if t >= on { 2.3 } else { 1.0 });
        let n = times.len();
        for i in 0..n {
            // Interleave a second action type with the same latency shape,
            // offset by 5 s so timestamps stay sorted after merge.
            times.push(times[i] + 5_000);
            lats.push(lats[i]);
            actions.push(ActionType::SwitchFolder.code());
        }
        // Re-sort the merged columns by time (stable on ties).
        let mut idx: Vec<usize> = (0..times.len()).collect();
        idx.sort_by_key(|&i| (times[i], i));
        let times: Vec<i64> = idx.iter().map(|&i| times[i]).collect();
        let lats: Vec<f64> = idx.iter().map(|&i| lats[i]).collect();
        let actions: Vec<u8> = idx.iter().map(|&i| actions[i]).collect();

        let shifts = detect_regimes(&times, &lats, &actions, &DetectorConfig::default()).unwrap();
        let up: Vec<&RegimeShift> = shifts
            .iter()
            .filter(|s| s.signal == "level" && s.direction == "up")
            .collect();
        assert!(up.len() >= 2, "expected alarms on both streams: {shifts:?}");
        assert!(
            up.iter().all(|s| s.shared),
            "coincident cross-stream alarms must be shared: {up:?}"
        );
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut cfg = DetectorConfig {
            bucket_ms: 7_000, // does not divide a day
            ..DetectorConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.bucket_ms = default_bucket_ms();
        cfg.min_ref_days = 0;
        assert!(cfg.validate().is_err());
        cfg.min_ref_days = 2;
        cfg.threshold = 0.0;
        cfg.calibration_reps = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn calibrated_threshold_is_seed_stable_and_positive() {
        let cfg = DetectorConfig::default();
        let a = calibrated_threshold(&cfg, 500);
        let b = calibrated_threshold(&cfg, 500);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!(a > cfg.drift, "threshold {a} implausibly small");
        let other = DetectorConfig {
            seed: 1,
            ..DetectorConfig::default()
        };
        assert_ne!(a.to_bits(), calibrated_threshold(&other, 500).to_bits());
    }
}
