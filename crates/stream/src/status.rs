//! The `watch --status-out` health document: one JSON file, periodically
//! rewritten, answering "how is the stream doing *right now*?" — current
//! and windowed preference curves, intake counters, per-shard watermark
//! lag, queue depth, loss rate, detected regime shifts, and the flight
//! recorder's recent events.
//!
//! The document is rewritten atomically (write to a `.tmp` sibling, then
//! rename) so a reader polling the path never sees a torn file.

use std::path::Path;

use serde::{Deserialize, Serialize};

use autosens_core::pipeline::AnalysisReport;
use autosens_obs::FlightEvent;

use crate::detector::RegimeShift;
use crate::engine::{StreamEngine, StreamStatus};
use crate::error::StreamError;

/// How many flight-recorder events the document carries.
const RECENT_EVENTS: usize = 32;

/// One live shard's position relative to the event-time frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardLag {
    /// Start of the shard's event-time bucket, ms.
    pub bucket_start_ms: i64,
    /// Records held by the shard.
    pub records: u64,
    /// How far the shard's newest record trails the frontier, ms.
    pub lag_ms: i64,
}

/// The windowed decayed curve as exported (see
/// [`WindowedCurve`](autosens_core::WindowedCurve)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedSummary {
    /// Decay half-life, event-time ms.
    pub half_life_ms: i64,
    /// The frontier the decay was anchored at.
    pub frontier_ms: i64,
    /// Total decayed biased mass (effective sample size proxy).
    pub effective_mass: f64,
    /// The fitted windowed preference samples; empty when the decayed
    /// mass no longer supports a fit.
    pub curve: Vec<(f64, f64)>,
}

/// The health document `watch --status-out` rewrites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusDocument {
    /// Event-time frontier when the document was assembled, ms. Event
    /// time, not wall clock: the document is a pure function of the
    /// stream contents.
    pub generated_at_ms: i64,
    /// Intake counters and store shape.
    pub status: StreamStatus,
    /// Ingest queue depth at assembly time (0 when pushing directly).
    pub queue_depth: u64,
    /// Whether the embedded report was served from the engine's snapshot
    /// cache (no events arrived since the previous snapshot computed it).
    #[serde(default)]
    pub report_cached: bool,
    /// The intake event count the embedded report was computed at — the
    /// snapshot cache's dirty key. Equal to `status.events` whenever the
    /// document and report were assembled under one tenant lock.
    #[serde(default)]
    pub report_events: u64,
    /// Volume-weighted overall estimated telemetry-loss rate.
    pub loss_rate: f64,
    /// Whether the loss-aware correction is currently active.
    pub loss_correction_active: bool,
    /// The lifetime preference curve samples `(latency_ms, preference)`.
    pub curve: Vec<(f64, f64)>,
    /// The windowed decayed curve, when enabled.
    pub windowed: Option<WindowedSummary>,
    /// Per-shard watermark lag, bucket order.
    pub shard_lags: Vec<ShardLag>,
    /// Regime shifts found by the most recent detection pass.
    pub regime_shifts: Vec<RegimeShift>,
    /// The flight recorder's most recent events, oldest first.
    pub recent_events: Vec<FlightEvent>,
}

impl StatusDocument {
    /// Assemble a document from an engine and its latest snapshot report.
    pub fn collect(
        engine: &StreamEngine,
        report: &AnalysisReport,
        queue_depth: u64,
    ) -> StatusDocument {
        let status = engine.status();
        let windowed = report.windowed.as_ref().map(|w| WindowedSummary {
            half_life_ms: w.spec.half_life_ms,
            frontier_ms: w.spec.frontier_ms,
            effective_mass: w.effective_mass,
            curve: w
                .preference
                .as_ref()
                .map(|p| p.series().to_vec())
                .unwrap_or_default(),
        });
        StatusDocument {
            generated_at_ms: status.max_event_time_ms.unwrap_or(0),
            status,
            queue_depth,
            report_cached: engine.last_snapshot_reused(),
            report_events: engine.events(),
            loss_rate: report.loss.as_ref().map_or(0.0, |l| l.overall_rate),
            loss_correction_active: report.loss.is_some(),
            curve: report.preference.series().to_vec(),
            windowed,
            shard_lags: engine
                .shard_lags()
                .into_iter()
                .map(|(bucket_start_ms, records, lag_ms)| ShardLag {
                    bucket_start_ms,
                    records,
                    lag_ms,
                })
                .collect(),
            regime_shifts: engine.last_shifts().to_vec(),
            recent_events: engine.flight().recent(RECENT_EVENTS),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, StreamError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| StreamError::Corrupt(format!("status serialization failed: {e}")))
    }

    /// Parse a document from JSON.
    pub fn from_json(json: &str) -> Result<StatusDocument, StreamError> {
        serde_json::from_str(json)
            .map_err(|e| StreamError::Corrupt(format!("status parse failed: {e}")))
    }

    /// Rewrite `path` atomically: a crash mid-write never leaves a torn
    /// document under the real name.
    pub fn save(&self, path: &Path) -> Result<(), StreamError> {
        let json = self.to_json()?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorConfig;
    use crate::engine::StreamConfig;
    use autosens_sim::{generate, Scenario, SimConfig};
    use autosens_telemetry::query::Slice;

    fn engine_with_data() -> (StreamEngine, AnalysisReport) {
        let cfg = StreamConfig {
            shard_ms: 6 * 3_600_000,
            decay_half_life_ms: Some(2 * 86_400_000),
            detector: Some(DetectorConfig::default()),
            ..StreamConfig::default()
        };
        let mut engine = StreamEngine::new(cfg, Slice::all()).unwrap();
        let (log, _) = generate(&SimConfig::scenario(Scenario::Smoke)).unwrap();
        for r in log.iter() {
            engine.push(r);
        }
        engine.run_detection().unwrap();
        let report = engine.snapshot().unwrap();
        (engine, report)
    }

    #[test]
    fn document_round_trips_and_carries_both_curves() {
        let (engine, report) = engine_with_data();
        let doc = StatusDocument::collect(&engine, &report, 3);
        assert!(doc.generated_at_ms > 0);
        assert_eq!(doc.queue_depth, 3);
        assert_eq!(doc.report_events, doc.status.events);
        assert!(
            !doc.report_cached,
            "first snapshot after ingest cannot be cache-served"
        );
        assert!(!doc.curve.is_empty());
        let windowed = doc.windowed.as_ref().expect("windowed curve enabled");
        assert_eq!(windowed.half_life_ms, 2 * 86_400_000);
        assert!(windowed.effective_mass > 0.0);
        assert!(!doc.shard_lags.is_empty());
        assert_eq!(
            doc.shard_lags.iter().map(|s| s.records).sum::<u64>(),
            doc.status.live_records
        );
        let json = doc.to_json().unwrap();
        let back = StatusDocument::from_json(&json).unwrap();
        assert_eq!(back, doc);
    }

    /// Serialization stability: deserialize → reserialize must reproduce
    /// the exact bytes. The serve query plane ships these documents to
    /// remote pollers and the gateway restart gate diffs them, so any
    /// field that doesn't survive a round trip byte-for-byte (map
    /// ordering, float formatting, skipped defaults) breaks consumers.
    #[test]
    fn serialization_is_byte_stable_across_round_trips() {
        let (engine, report) = engine_with_data();
        let doc = StatusDocument::collect(&engine, &report, 7);
        let first = doc.to_json().unwrap();
        let back = StatusDocument::from_json(&first).unwrap();
        let second = back.to_json().unwrap();
        assert_eq!(first, second, "re-serialized document differs");
        let third = StatusDocument::from_json(&second)
            .unwrap()
            .to_json()
            .unwrap();
        assert_eq!(second, third, "round trip is not idempotent");
    }

    #[test]
    fn save_is_atomic_and_replaces_prior_content() {
        let (engine, report) = engine_with_data();
        let doc = StatusDocument::collect(&engine, &report, 0);
        let dir = std::env::temp_dir().join(format!("autosens-status-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("status.json");
        std::fs::write(&path, "{\"stale\":true}").unwrap();
        doc.save(&path).unwrap();
        let back = StatusDocument::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, doc);
        assert!(!path.with_extension("tmp").exists(), "tmp file left behind");
        std::fs::remove_dir_all(&dir).ok();
    }
}
