//! Durable engine state: serialize shard records + intake counters to
//! disk, resume a stream mid-flight.
//!
//! The shard **records** are the state of record; every derived partial
//! aggregate (group histograms, α_T counts, hour counters) is rebuilt on
//! restore, so a checkpoint can never carry partials that disagree with
//! the records they summarize. The analysis [`Slice`](autosens_telemetry::query::Slice)
//! is deliberately not serialized — callers re-derive it from their own
//! configuration and pass it to [`StreamEngine::restore`](crate::StreamEngine::restore).
//! `source_offset` carries the tailed source's position — a byte offset
//! for text files, a row count for binary `.asc` containers (which grow by
//! atomic whole-file replacement, so only row indices are stable) — so a
//! resumed `watch` continues reading exactly where the checkpoint was cut.

use std::path::Path;

use serde::{Deserialize, Serialize};

use autosens_telemetry::record::ActionRecord;

use crate::engine::StreamConfig;
use crate::error::StreamError;

/// Bump when the on-disk layout changes incompatibly.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One shard's durable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// The shard's time bucket (`time_ms.div_euclid(shard_ms)`).
    pub bucket: i64,
    /// The shard's records, time-sorted and arrival-stable.
    pub records: Vec<ActionRecord>,
}

/// The full durable state of a [`StreamEngine`](crate::StreamEngine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Layout version; restore rejects mismatches.
    pub version: u32,
    /// The streaming + analysis configuration the state was built under.
    pub config: StreamConfig,
    /// Event-time frontier at checkpoint time.
    pub max_event_time_ms: Option<i64>,
    /// Last raw arrival timestamp (for the out-of-order detector).
    pub last_arrival_ms: Option<i64>,
    /// Whether any record arrived out of time order so far.
    pub saw_out_of_order: bool,
    /// Records offered (pre-filter).
    pub events: u64,
    /// Records excluded by the slice filter.
    pub filtered: u64,
    /// Records dropped past the watermark.
    pub late: u64,
    /// Exact duplicates dropped at insert.
    pub duplicates: u64,
    /// Records dropped with evicted shards.
    pub evicted: u64,
    /// Post-filter intake (admitted + duplicates) — batch `records_in`.
    pub records_in: u64,
    /// Offset into the tailed source (0 when not tailing): bytes consumed
    /// for text files, rows consumed for binary containers.
    pub source_offset: u64,
    /// Live shards in bucket order.
    pub shards: Vec<ShardCheckpoint>,
}

impl Checkpoint {
    /// Structural validation independent of the record contents (record
    /// membership and sortedness are re-checked during restore).
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(StreamError::Corrupt(format!(
                "checkpoint version {} is not the supported version {CHECKPOINT_VERSION}",
                self.version
            )));
        }
        for w in self.shards.windows(2) {
            if w[1].bucket <= w[0].bucket {
                return Err(StreamError::Corrupt(format!(
                    "shard buckets are not strictly increasing ({} then {})",
                    w[0].bucket, w[1].bucket
                )));
            }
        }
        Ok(())
    }

    /// Guard for resuming a tailed source: the checkpointed offset must
    /// not exceed the source's current length (`len` is bytes for text
    /// files, rows for binary containers). A shorter source means it was
    /// truncated or replaced since the checkpoint was cut, so seeking to
    /// `source_offset` would read from the middle of unrelated data (or
    /// past EOF) and silently corrupt the stream.
    pub fn check_source_length(&self, len: u64) -> Result<(), StreamError> {
        if self.source_offset > len {
            return Err(StreamError::TruncatedSource {
                offset: self.source_offset,
                len,
            });
        }
        Ok(())
    }

    /// [`Checkpoint::check_source_length`] against a file on disk.
    pub fn check_source_file(&self, path: &Path) -> Result<(), StreamError> {
        self.check_source_length(std::fs::metadata(path)?.len())
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, StreamError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| StreamError::Corrupt(format!("checkpoint serialization failed: {e}")))
    }

    /// Parse a checkpoint from JSON and validate its structure.
    pub fn from_json(json: &str) -> Result<Checkpoint, StreamError> {
        let ck: Checkpoint = serde_json::from_str(json)
            .map_err(|e| StreamError::Corrupt(format!("checkpoint parse failed: {e}")))?;
        ck.validate()?;
        Ok(ck)
    }

    /// Write the checkpoint atomically: to a `.tmp` sibling first,
    /// fsynced, then rename over the target, so a crash mid-write never
    /// leaves a truncated checkpoint under the real name. The parent
    /// directory is fsynced best-effort after the rename so the new
    /// entry also survives power loss where the platform supports it.
    pub fn save(&self, path: &Path) -> Result<(), StreamError> {
        let json = self.to_json()?;
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, json.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            if let Ok(d) = std::fs::File::open(parent) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Read and validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, StreamError> {
        let json = std::fs::read_to_string(path)?;
        Checkpoint::from_json(&json)
    }
}
