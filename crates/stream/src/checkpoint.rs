//! Durable engine state: serialize shard records + intake counters to
//! disk, resume a stream mid-flight.
//!
//! The shard **records** are the state of record. Each shard also carries
//! its cached plan-layer partials ([`ShardPartials`]: the sparse per-cell
//! biased histograms, action counts, loss-cell observation counts, and
//! hour counters) so a restore can skip the per-record refold — but the
//! partials are *trusted only after validation*: restore cross-checks
//! their totals against the record count and reports any mismatch as
//! corruption rather than silently recomputing, so a checkpoint can
//! never smuggle in partials that disagree with the records they
//! summarize. Checkpoints written before
//! partials existed (`partials: null` or absent) rebuild the aggregates
//! from records exactly as before. The analysis
//! [`Slice`](autosens_telemetry::query::Slice)
//! is deliberately not serialized — callers re-derive it from their own
//! configuration and pass it to [`StreamEngine::restore`](crate::StreamEngine::restore).
//! `source_offset` carries the tailed source's position — a byte offset
//! for text files, a row count for binary `.asc` containers (which grow by
//! atomic whole-file replacement, so only row indices are stable) — so a
//! resumed `watch` continues reading exactly where the checkpoint was cut.

use std::path::Path;

use serde::{Deserialize, Serialize};

use autosens_core::{GroupPartition, PlanPartials};
use autosens_stats::binning::Binner;
use autosens_stats::histogram::Histogram;
use autosens_telemetry::loss::LossCounts;
use autosens_telemetry::record::ActionRecord;

use crate::engine::StreamConfig;
use crate::error::StreamError;
use crate::shard::Shard;

/// Bump when the on-disk layout changes incompatibly.
pub const CHECKPOINT_VERSION: u32 = 1;

/// One loss cell's cached fold state, sparse over bins: only cells that
/// saw a record are checkpointed, and only their nonzero bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellPartial {
    /// The loss-cell index this state belongs to.
    pub cell: u32,
    /// Actions folded into the cell (the `alpha` operator's count).
    pub actions: u64,
    /// The cell histogram's recorded-value count.
    pub recorded: u64,
    /// The cell histogram's out-of-range discard count.
    pub discarded: u64,
    /// The cell histogram's total recorded weight (equals `recorded` for
    /// the stream's unit-weight folds; kept explicit so the restored
    /// histogram is field-for-field identical, not re-derived).
    pub total: f64,
    /// `(bin index, count)` for every nonzero bin, in index order.
    pub bins: Vec<(u32, f64)>,
}

/// One shard's cached plan-layer partials (see the module docs for the
/// validation contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardPartials {
    /// Actions per local hour slot (always 24 entries).
    pub hour_counts: Vec<u64>,
    /// The `lossmodel` operator's per-day loss-cell observation counts.
    pub loss: LossCounts,
    /// Sparse per-cell `alpha`/`biased_pdf` fold state.
    pub cells: Vec<CellPartial>,
}

impl ShardPartials {
    /// Capture a live shard's partials in the sparse durable layout.
    pub(crate) fn capture(shard: &Shard) -> ShardPartials {
        let partition = &shard.partials.partition;
        let cells = partition
            .cells
            .iter()
            .zip(&partition.cell_actions)
            .enumerate()
            .filter(|(_, (h, &actions))| actions > 0 || h.n_recorded() > 0 || h.n_discarded() > 0)
            .map(|(i, (h, &actions))| CellPartial {
                cell: i as u32,
                actions,
                recorded: h.n_recorded(),
                discarded: h.n_discarded(),
                total: h.total(),
                bins: h
                    .counts()
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0.0)
                    .map(|(b, &c)| (b as u32, c))
                    .collect(),
            })
            .collect();
        ShardPartials {
            hour_counts: shard.hour_counts.to_vec(),
            loss: shard.partials.loss.clone(),
            cells,
        }
    }

    /// Reconstruct a shard from checkpointed records plus these partials,
    /// validating every cached total against the record count so corrupt
    /// or hand-edited partials are rejected instead of silently skewing
    /// every later snapshot.
    pub(crate) fn restore(
        &self,
        bucket: i64,
        records: &[ActionRecord],
        binner: &Binner,
    ) -> Result<Shard, StreamError> {
        let corrupt = |detail: String| StreamError::Corrupt(format!("shard {bucket}: {detail}"));
        if self.hour_counts.len() != 24 {
            return Err(corrupt(format!(
                "expected 24 hour counters, found {}",
                self.hour_counts.len()
            )));
        }
        let mut partition = GroupPartition::empty(binner);
        let n_bins = binner.n_bins();
        let mut recorded = 0u64;
        let mut discarded = 0u64;
        for cp in &self.cells {
            let cell = cp.cell as usize;
            if cell >= partition.cells.len() {
                return Err(corrupt(format!(
                    "cell index {cell} out of range ({} cells)",
                    partition.cells.len()
                )));
            }
            let mut counts = vec![0.0f64; n_bins];
            for &(bin, count) in &cp.bins {
                if bin as usize >= n_bins {
                    return Err(corrupt(format!(
                        "cell {cell} bin index {bin} out of range ({n_bins} bins)"
                    )));
                }
                counts[bin as usize] = count;
            }
            partition.cells[cell] =
                Histogram::from_parts(binner.clone(), counts, cp.total, cp.recorded, cp.discarded)
                    .map_err(|e| corrupt(format!("cell {cell}: {e}")))?;
            partition.cell_actions[cell] = cp.actions;
            recorded += cp.recorded;
            discarded += cp.discarded;
        }
        let len = records.len() as u64;
        if partition.n_records() != len {
            return Err(corrupt(format!(
                "partials cover {} actions but the shard holds {len} records",
                partition.n_records()
            )));
        }
        if recorded + discarded != len {
            return Err(corrupt(format!(
                "partials account for {recorded} recorded + {discarded} discarded \
                 latencies but the shard holds {len} records"
            )));
        }
        if self.loss.total() != len {
            return Err(corrupt(format!(
                "partials count {} loss-cell observations but the shard holds {len} records",
                self.loss.total()
            )));
        }
        if self.hour_counts.iter().sum::<u64>() != len {
            return Err(corrupt(format!(
                "hour counters sum to {} but the shard holds {len} records",
                self.hour_counts.iter().sum::<u64>()
            )));
        }
        let mut hour_counts = [0u64; 24];
        hour_counts.copy_from_slice(&self.hour_counts);
        Ok(Shard::from_parts(
            records,
            PlanPartials {
                partition,
                loss: self.loss.clone(),
            },
            hour_counts,
        ))
    }
}

/// One shard's durable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// The shard's time bucket (`time_ms.div_euclid(shard_ms)`).
    pub bucket: i64,
    /// The shard's records, time-sorted and arrival-stable.
    pub records: Vec<ActionRecord>,
    /// Cached plan-layer partials; `None` (including in pre-partials
    /// checkpoints) rebuilds them from the records on restore.
    #[serde(default)]
    pub partials: Option<ShardPartials>,
}

/// The full durable state of a [`StreamEngine`](crate::StreamEngine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Layout version; restore rejects mismatches.
    pub version: u32,
    /// The streaming + analysis configuration the state was built under.
    pub config: StreamConfig,
    /// Event-time frontier at checkpoint time.
    pub max_event_time_ms: Option<i64>,
    /// Last raw arrival timestamp (for the out-of-order detector).
    pub last_arrival_ms: Option<i64>,
    /// Whether any record arrived out of time order so far.
    pub saw_out_of_order: bool,
    /// Records offered (pre-filter).
    pub events: u64,
    /// Records excluded by the slice filter.
    pub filtered: u64,
    /// Records dropped past the watermark.
    pub late: u64,
    /// Exact duplicates dropped at insert.
    pub duplicates: u64,
    /// Records dropped with evicted shards.
    pub evicted: u64,
    /// Post-filter intake (admitted + duplicates) — batch `records_in`.
    pub records_in: u64,
    /// Offset into the tailed source (0 when not tailing): bytes consumed
    /// for text files, rows consumed for binary containers.
    pub source_offset: u64,
    /// Live shards in bucket order.
    pub shards: Vec<ShardCheckpoint>,
}

impl Checkpoint {
    /// Structural validation independent of the record contents (record
    /// membership and sortedness are re-checked during restore).
    pub fn validate(&self) -> Result<(), StreamError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(StreamError::Corrupt(format!(
                "checkpoint version {} is not the supported version {CHECKPOINT_VERSION}",
                self.version
            )));
        }
        for w in self.shards.windows(2) {
            if w[1].bucket <= w[0].bucket {
                return Err(StreamError::Corrupt(format!(
                    "shard buckets are not strictly increasing ({} then {})",
                    w[0].bucket, w[1].bucket
                )));
            }
        }
        Ok(())
    }

    /// Guard for resuming a tailed source: the checkpointed offset must
    /// not exceed the source's current length (`len` is bytes for text
    /// files, rows for binary containers). A shorter source means it was
    /// truncated or replaced since the checkpoint was cut, so seeking to
    /// `source_offset` would read from the middle of unrelated data (or
    /// past EOF) and silently corrupt the stream.
    pub fn check_source_length(&self, len: u64) -> Result<(), StreamError> {
        if self.source_offset > len {
            return Err(StreamError::TruncatedSource {
                offset: self.source_offset,
                len,
            });
        }
        Ok(())
    }

    /// [`Checkpoint::check_source_length`] against a file on disk.
    pub fn check_source_file(&self, path: &Path) -> Result<(), StreamError> {
        self.check_source_length(std::fs::metadata(path)?.len())
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, StreamError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| StreamError::Corrupt(format!("checkpoint serialization failed: {e}")))
    }

    /// Parse a checkpoint from JSON and validate its structure.
    pub fn from_json(json: &str) -> Result<Checkpoint, StreamError> {
        let ck: Checkpoint = serde_json::from_str(json)
            .map_err(|e| StreamError::Corrupt(format!("checkpoint parse failed: {e}")))?;
        ck.validate()?;
        Ok(ck)
    }

    /// Write the checkpoint atomically: to a `.tmp` sibling first,
    /// fsynced, then rename over the target, so a crash mid-write never
    /// leaves a truncated checkpoint under the real name. The parent
    /// directory is fsynced best-effort after the rename so the new
    /// entry also survives power loss where the platform supports it.
    pub fn save(&self, path: &Path) -> Result<(), StreamError> {
        save_json(&self.to_json()?, path)
    }

    /// Read and validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, StreamError> {
        let json = std::fs::read_to_string(path)?;
        Checkpoint::from_json(&json)
    }
}

/// Write pre-serialized checkpoint JSON with the same atomic, durable
/// protocol as [`Checkpoint::save`]: `.tmp` sibling, fsync, rename, then
/// a best-effort parent-directory fsync. Lets callers that cache a
/// tenant's serialized checkpoint (see the serve registry) persist it
/// without re-serializing an unchanged engine.
pub fn save_json(json: &str, path: &Path) -> Result<(), StreamError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut f, json.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(d) = std::fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}
