//! Error type for the streaming subsystem.

use autosens_core::AutoSensError;
use autosens_telemetry::TelemetryError;

/// Anything the streaming engine can fail with.
#[derive(Debug)]
pub enum StreamError {
    /// A snapshot's analysis stage failed.
    Analysis(AutoSensError),
    /// A record or log operation failed.
    Telemetry(TelemetryError),
    /// Checkpoint file I/O failed.
    Io(std::io::Error),
    /// A checkpoint failed validation (wrong version, records outside
    /// their shard, unsorted shard, …).
    Corrupt(String),
    /// A resume found the tailed source file shorter than the
    /// checkpoint's byte offset — the file was truncated or replaced, so
    /// the checkpointed state no longer describes it.
    TruncatedSource {
        /// The checkpoint's source byte offset.
        offset: u64,
        /// The current length of the source file.
        len: u64,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Analysis(e) => write!(f, "analysis failed: {e}"),
            StreamError::Telemetry(e) => write!(f, "telemetry error: {e}"),
            StreamError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            StreamError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            StreamError::TruncatedSource { offset, len } => write!(
                f,
                "source file truncated: checkpoint offset {offset} exceeds file length {len}; \
                 delete the checkpoint to restart from the file's beginning"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<AutoSensError> for StreamError {
    fn from(e: AutoSensError) -> Self {
        StreamError::Analysis(e)
    }
}

impl From<TelemetryError> for StreamError {
    fn from(e: TelemetryError) -> Self {
        StreamError::Telemetry(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}
