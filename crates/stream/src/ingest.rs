//! Bounded intake queue with explicit backpressure and shed-and-count
//! overflow accounting, plus an optional fault-injection hook.
//!
//! The [`Ingestor`] sits between a telemetry source (a tailed file, a
//! simulator, a network receiver) and the [`StreamEngine`](crate::StreamEngine).
//! It deliberately keeps the engine out of the hot producer path: sources
//! call [`Ingestor::offer`] (cheap, lock-scoped queue push), a consumer
//! periodically calls [`Ingestor::drain_into`]. Overflow is never silent:
//! under [`OverflowPolicy::Shed`] the dropped record bumps
//! `autosens_stream_shed_events_total`; under [`OverflowPolicy::Block`]
//! the caller gets [`Offer::Full`] back and owns the retry (this crate
//! has no async runtime to park on).
//!
//! A [`FaultStream`] can be attached so reorder/drop/duplicate injection
//! happens **at the ingest boundary** — upstream of the queue and the
//! engine — which keeps the engine itself deterministic and
//! checkpointable while the intake sees realistic corruption.

use std::collections::VecDeque;

use parking_lot::Mutex;

use autosens_faults::FaultStream;
use autosens_obs::Recorder;
use autosens_telemetry::record::ActionRecord;

use crate::engine::{Ingest, StreamEngine};
use crate::error::StreamError;

/// What to do when the bounded queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Reject the offer with [`Offer::Full`]; the producer retries after
    /// the consumer drains (explicit backpressure).
    Block,
    /// Drop the newest record, count it, and keep going (load shedding).
    Shed,
}

/// Outcome of one [`Ingestor::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Enqueued (possibly as several records, if a fault duplicated it).
    Accepted,
    /// Dropped and counted under [`OverflowPolicy::Shed`].
    Shed,
    /// Queue at capacity under [`OverflowPolicy::Block`]; retry later.
    Full,
}

struct IngestorState {
    queue: VecDeque<ActionRecord>,
    faults: Option<FaultStream>,
    shed: u64,
}

/// A bounded, mutex-guarded intake queue. See the module docs.
pub struct Ingestor {
    state: Mutex<IngestorState>,
    capacity: usize,
    policy: OverflowPolicy,
    recorder: Recorder,
}

impl Ingestor {
    /// A queue holding at most `capacity` records.
    pub fn new(capacity: usize, policy: OverflowPolicy, recorder: Recorder) -> Ingestor {
        assert!(capacity > 0, "ingestor capacity must be > 0");
        Ingestor {
            state: Mutex::new(IngestorState {
                queue: VecDeque::with_capacity(capacity.min(4096)),
                faults: None,
                shed: 0,
            }),
            capacity,
            policy,
            recorder,
        }
    }

    /// Attach a fault stream; every subsequent offer passes through it
    /// before queueing. Returns the previous stream, if any.
    pub fn set_faults(&self, faults: Option<FaultStream>) -> Option<FaultStream> {
        std::mem::replace(&mut self.state.lock().faults, faults)
    }

    /// Offer one record. Fault injection (if attached) may drop it, mutate
    /// it, or fan it out into several records; capacity is enforced per
    /// resulting record, so a duplicate burst can partially shed.
    pub fn offer(&self, record: ActionRecord) -> Offer {
        let mut state = self.state.lock();
        let produced: Vec<ActionRecord> = match &mut state.faults {
            Some(fs) => fs.push(record),
            None => vec![record],
        };
        // A fault-dropped record is not an overflow: report it accepted so
        // the producer keeps going (the FaultStream already accounted it).
        let mut outcome = Offer::Accepted;
        for r in produced {
            if state.queue.len() >= self.capacity {
                match self.policy {
                    OverflowPolicy::Block => {
                        outcome = Offer::Full;
                        break;
                    }
                    OverflowPolicy::Shed => {
                        state.shed += 1;
                        self.recorder
                            .metrics()
                            .counter("autosens_stream_shed_events_total")
                            .inc();
                        outcome = Offer::Shed;
                        continue;
                    }
                }
            }
            state.queue.push_back(r);
        }
        self.recorder
            .metrics()
            .gauge("autosens_stream_queue_depth")
            .set(state.queue.len() as f64);
        outcome
    }

    /// Records currently queued.
    pub fn queue_depth(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Records shed so far (transient — intentionally not checkpointed;
    /// a shed record never reached durable state).
    pub fn shed(&self) -> u64 {
        self.state.lock().shed
    }

    /// Drain every queued record into the engine, in arrival order.
    /// Returns how many were pushed and how many of those were admitted.
    pub fn drain_into(&self, engine: &mut StreamEngine) -> Result<DrainSummary, StreamError> {
        let drained: Vec<ActionRecord> = {
            let mut state = self.state.lock();
            state.queue.drain(..).collect()
        };
        self.recorder
            .metrics()
            .gauge("autosens_stream_queue_depth")
            .set(0.0);
        let mut summary = DrainSummary::default();
        for r in drained {
            summary.pushed += 1;
            if engine.push(r) == Ingest::Admitted {
                summary.admitted += 1;
            }
        }
        Ok(summary)
    }
}

/// What one [`Ingestor::drain_into`] call moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Records handed to the engine.
    pub pushed: usize,
    /// Of those, records the engine admitted into a shard.
    pub admitted: usize,
}
