//! Streaming telemetry ingestion with incremental preference-curve
//! maintenance.
//!
//! The batch pipeline in `autosens-core` answers "what is the latency
//! preference of this log?"; this crate answers the same question for a
//! log that is still growing. It has four pieces:
//!
//! * [`Ingestor`] — a bounded intake queue with explicit backpressure
//!   ([`OverflowPolicy::Block`]) or shed-and-count overflow
//!   ([`OverflowPolicy::Shed`]), plus an optional
//!   [`FaultStream`](autosens_faults::FaultStream) hook so corruption is
//!   injected at the ingest boundary rather than inside the engine.
//! * [`StreamEngine`] — a time-sharded sliding-window store tolerating
//!   out-of-order arrival up to a configurable lateness budget
//!   (low-watermark semantics: older arrivals are counted-and-dropped,
//!   never silently lost). Each shard keeps incremental partial
//!   aggregates, so [`StreamEngine::snapshot`] merges partials and enters
//!   the shared pipeline post-sanitize instead of re-running the batch
//!   pipeline from scratch.
//! * [`Checkpoint`] — serialize the engine's durable state to disk and
//!   resume a stream mid-flight, including the tailed file's byte offset.
//! * Observability — `autosens_stream_*` counters (events, late,
//!   duplicates, filtered, shed, evicted, flushes), queue-depth and
//!   watermark-lag gauges, and a `stream_flush` span per snapshot.
//!
//! The load-bearing property, enforced by tests here and by the CI
//! equivalence gate: **after draining a finite log, a snapshot is
//! bit-identical to batch `AutoSens::analyze` over the same log** —
//! curves, α estimates, degradation bookkeeping, and `autosens_core_*`
//! metrics all match. See the [`engine`] module docs for why.

pub mod checkpoint;
pub mod detector;
pub mod engine;
pub mod error;
pub mod ingest;
mod shard;
pub mod status;

pub use checkpoint::{
    save_json, CellPartial, Checkpoint, ShardCheckpoint, ShardPartials, CHECKPOINT_VERSION,
};
pub use detector::{DetectorConfig, RegimeShift};
pub use engine::{Ingest, StreamConfig, StreamEngine, StreamStatus};
pub use error::StreamError;
pub use ingest::{DrainSummary, Ingestor, Offer, OverflowPolicy};
pub use status::StatusDocument;

#[cfg(test)]
mod tests {
    use super::*;
    use autosens_core::pipeline::AnalysisReport;
    use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
    use autosens_faults::{FaultOp, FaultPlan, FaultStream};
    use autosens_obs::Recorder;
    use autosens_sim::{self, Scenario, SimConfig};
    use autosens_telemetry::log::TelemetryLog;
    use autosens_telemetry::query::Slice;
    use autosens_telemetry::record::ActionRecord;

    fn smoke_log() -> TelemetryLog {
        let cfg = SimConfig::scenario(Scenario::Smoke);
        autosens_sim::generate(&cfg).expect("smoke generation").0
    }

    fn batch_analyze(log: &TelemetryLog) -> AnalysisReport {
        AnalysisPlan::new(AutoSensConfig::default())
            .run(PlanInput::log(log), RunOptions::default())
            .expect("batch analyze")
            .report
    }

    fn stream_config() -> StreamConfig {
        StreamConfig {
            analysis: AutoSensConfig::default(),
            shard_ms: 6 * 3_600_000,
            allowed_lateness_ms: 3_600_000,
            retain_ms: None,
            detector: None,
            decay_half_life_ms: None,
        }
    }

    /// Bit-level report equality: curve samples, histograms, α groups,
    /// degradations, and counts all identical.
    fn assert_reports_identical(stream: &AnalysisReport, batch: &AnalysisReport) {
        assert_eq!(stream.n_actions, batch.n_actions);
        assert_eq!(stream.degradations, batch.degradations);
        let sb: Vec<u64> = stream.biased.counts().iter().map(|c| c.to_bits()).collect();
        let bb: Vec<u64> = batch.biased.counts().iter().map(|c| c.to_bits()).collect();
        assert_eq!(sb, bb, "biased histograms diverged");
        let su: Vec<u64> = stream
            .unbiased
            .counts()
            .iter()
            .map(|c| c.to_bits())
            .collect();
        let bu: Vec<u64> = batch
            .unbiased
            .counts()
            .iter()
            .map(|c| c.to_bits())
            .collect();
        assert_eq!(su, bu, "unbiased histograms diverged");
        let ss: Vec<(u64, u64)> = stream
            .preference
            .series()
            .iter()
            .map(|(x, y)| (x.to_bits(), y.to_bits()))
            .collect();
        let bs: Vec<(u64, u64)> = batch
            .preference
            .series()
            .iter()
            .map(|(x, y)| (x.to_bits(), y.to_bits()))
            .collect();
        assert_eq!(ss, bs, "preference curves diverged");
        match (&stream.alpha, &batch.alpha) {
            (Some(sa), Some(ba)) => {
                assert_eq!(sa.grouping, ba.grouping);
                assert_eq!(sa.primary_reference, ba.primary_reference);
                assert_eq!(sa.references, ba.references);
                assert_eq!(sa.groups.len(), ba.groups.len());
                for (sg, bg) in sa.groups.iter().zip(&ba.groups) {
                    assert_eq!(sg.n_actions, bg.n_actions);
                    assert_eq!(
                        sg.alpha.map(f64::to_bits),
                        bg.alpha.map(f64::to_bits),
                        "per-group α diverged"
                    );
                }
            }
            (None, None) => {}
            _ => panic!("alpha presence diverged between stream and batch"),
        }
    }

    #[test]
    fn drained_snapshot_is_bit_identical_to_batch_analyze() {
        let log = smoke_log();
        let batch = batch_analyze(&log);

        let mut engine = StreamEngine::new(stream_config(), Slice::all()).expect("engine");
        for r in log.iter() {
            engine.push(r);
        }
        let snap = engine.snapshot().expect("snapshot");
        assert_reports_identical(&snap, &batch);

        let status = engine.status();
        assert_eq!(status.events, log.len() as u64);
        assert_eq!(status.late, 0);
        assert_eq!(status.duplicates, 0);
    }

    #[test]
    fn reorder_within_lateness_budget_preserves_bit_equality() {
        let log = smoke_log();
        // Inject timestamp jitter at the ingest boundary, bounded by half
        // the lateness budget so nothing lands past the watermark; the
        // stream sees the corrupted records in their original arrival
        // order, batch sees the same corrupted log.
        let plan = FaultPlan {
            seed: 0x0DD5,
            ops: vec![FaultOp::Reorder {
                rate: 0.2,
                max_shift_ms: 30 * 60_000,
            }],
        };
        let corrupted = plan.apply(&log).expect("fault injection");
        let batch = batch_analyze(&corrupted);

        let mut engine = StreamEngine::new(stream_config(), Slice::all()).expect("engine");
        for r in corrupted.iter() {
            assert_ne!(engine.push(r), Ingest::Late, "jitter exceeded lateness");
        }
        let snap = engine.snapshot().expect("snapshot");
        assert_reports_identical(&snap, &batch);
        // Both paths observed and repaired the same disorder.
        assert!(snap
            .degradations
            .iter()
            .any(|d| d.detail.contains("out of time order")));
    }

    #[test]
    fn duplicates_dedup_identically_to_batch_sanitize() {
        let log = smoke_log();
        let plan = FaultPlan {
            seed: 0xD0B,
            ops: vec![FaultOp::Duplicate { rate: 0.1 }],
        };
        let corrupted = plan.apply(&log).expect("fault injection");
        let batch = batch_analyze(&corrupted);

        let recorder = Recorder::new();
        let mut engine =
            StreamEngine::with_recorder(stream_config(), Slice::all(), recorder.clone())
                .expect("engine");
        let mut dups = 0u64;
        for r in corrupted.iter() {
            if engine.push(r) == Ingest::Duplicate {
                dups += 1;
            }
        }
        assert!(dups > 0, "the duplicate fault produced no duplicates");
        let snap = engine.snapshot().expect("snapshot");
        assert_reports_identical(&snap, &batch);
        assert!(snap
            .degradations
            .iter()
            .any(|d| d.detail.contains("exact duplicate")));
        assert_eq!(
            recorder
                .metrics()
                .snapshot()
                .counter("autosens_stream_duplicate_events_total"),
            Some(dups)
        );
    }

    #[test]
    fn late_arrivals_are_counted_and_dropped() {
        let log = smoke_log();
        let mut cfg = stream_config();
        cfg.allowed_lateness_ms = 60_000;
        let recorder = Recorder::new();
        let mut engine =
            StreamEngine::with_recorder(cfg, Slice::all(), recorder.clone()).expect("engine");
        for r in log.iter() {
            engine.push(r);
        }
        // Replay the very first record: it is now far behind the frontier.
        let first = log.iter().next().expect("non-empty log");
        assert_eq!(engine.push(first), Ingest::Late);
        assert_eq!(engine.status().late, 1);
        assert_eq!(
            recorder
                .metrics()
                .snapshot()
                .counter("autosens_stream_late_events_total"),
            Some(1)
        );
        let snap = engine.snapshot().expect("snapshot");
        assert!(snap
            .degradations
            .iter()
            .any(|d| d.stage == "stream" && d.detail.contains("watermark")));
    }

    #[test]
    fn checkpoint_roundtrip_resumes_bit_identically() {
        let log = smoke_log();
        let records: Vec<ActionRecord> = log.iter().collect();
        let half = records.len() / 2;

        let mut original = StreamEngine::new(stream_config(), Slice::all()).expect("engine");
        for &r in &records[..half] {
            original.push(r);
        }
        let json = original.checkpoint(42).to_json().expect("serialize");
        let ck = Checkpoint::from_json(&json).expect("parse");
        assert_eq!(ck.source_offset, 42);
        let mut restored =
            StreamEngine::restore(ck, Slice::all(), Recorder::disabled()).expect("restore");

        for &r in &records[half..] {
            original.push(r);
            restored.push(r);
        }
        let a = original.snapshot().expect("original snapshot");
        let b = restored.snapshot().expect("restored snapshot");
        assert_reports_identical(&a, &b);
        assert_eq!(original.status(), restored.status());
    }

    #[test]
    fn clean_snapshot_is_served_from_cache_and_byte_identical() {
        let log = smoke_log();
        let recorder = Recorder::new();
        let mut engine =
            StreamEngine::with_recorder(stream_config(), Slice::all(), recorder.clone())
                .expect("engine");
        let records: Vec<ActionRecord> = log.iter().collect();
        let half = records.len() / 2;
        for &r in &records[..half] {
            engine.push(r);
        }
        let cold = engine.snapshot().expect("cold snapshot");
        assert!(!engine.last_snapshot_reused());
        let warm = engine.snapshot().expect("warm snapshot");
        assert!(engine.last_snapshot_reused());
        assert_reports_identical(&warm, &cold);
        assert_eq!(
            recorder
                .metrics()
                .snapshot()
                .counter("autosens_stream_snapshot_reuse_total"),
            Some(1)
        );

        // Any new event invalidates the cache; the incrementally rebuilt
        // store must match a cold engine fed the full sequence.
        for &r in &records[half..] {
            engine.push(r);
        }
        let dirty = engine.snapshot().expect("dirty snapshot");
        assert!(!engine.last_snapshot_reused());
        let mut fresh = StreamEngine::new(stream_config(), Slice::all()).expect("engine");
        for &r in &records {
            fresh.push(r);
        }
        let fresh_snap = fresh.snapshot().expect("fresh snapshot");
        assert_reports_identical(&dirty, &fresh_snap);
    }

    #[test]
    fn tampered_checkpoint_partials_are_rejected_and_absent_ones_rebuild() {
        let log = smoke_log();
        let mut engine = StreamEngine::new(stream_config(), Slice::all()).expect("engine");
        for r in log.iter() {
            engine.push(r);
        }
        let mut ck = engine.checkpoint(0);
        let partials = ck.shards[0]
            .partials
            .as_mut()
            .expect("checkpoints carry partials");
        partials
            .cells
            .first_mut()
            .expect("non-empty cell partials")
            .actions += 1;
        let err = StreamEngine::restore(ck, Slice::all(), Recorder::disabled());
        assert!(matches!(err, Err(StreamError::Corrupt(_))));

        // Absent partials (pre-partials checkpoints) rebuild from the
        // records and still restore bit-identically.
        let mut ck = engine.checkpoint(0);
        for shard in &mut ck.shards {
            shard.partials = None;
        }
        let restored =
            StreamEngine::restore(ck, Slice::all(), Recorder::disabled()).expect("restore");
        let a = engine.snapshot().expect("original snapshot");
        let b = restored.snapshot().expect("restored snapshot");
        assert_reports_identical(&a, &b);
        assert_eq!(engine.status(), restored.status());
    }

    #[test]
    fn flight_recorder_is_not_checkpointed() {
        use autosens_obs::FlightKind;
        let log = smoke_log();
        let mut original = StreamEngine::new(stream_config(), Slice::all()).expect("engine");
        for r in log.iter() {
            original.push(r);
        }
        let ck = original.checkpoint(7);
        // Saving is itself a flight event on the live engine…
        assert!(original
            .flight()
            .events()
            .iter()
            .any(|e| e.kind == FlightKind::CheckpointSaved));
        // …but none of that operational history crosses the checkpoint:
        // the restored process starts a fresh ring whose only event is the
        // restore marker (DESIGN.md §6g).
        let restored =
            StreamEngine::restore(ck, Slice::all(), Recorder::disabled()).expect("restore");
        let events = restored.flight().events();
        assert_eq!(events.len(), 1, "fresh ring expected: {events:?}");
        assert_eq!(events[0].kind, FlightKind::CheckpointRestored);
        assert_eq!(restored.flight().recorded(), 1);
    }

    #[test]
    fn detection_and_decay_do_not_perturb_the_batch_identical_snapshot() {
        // The observability plane must observe, not interfere: with the
        // detector and the windowed curve both enabled, the lifetime
        // report stays bit-identical to batch analyze.
        let log = smoke_log();
        let batch = batch_analyze(&log);
        let cfg = StreamConfig {
            detector: Some(DetectorConfig::default()),
            decay_half_life_ms: Some(2 * 86_400_000),
            ..stream_config()
        };
        let mut engine = StreamEngine::new(cfg, Slice::all()).expect("engine");
        for r in log.iter() {
            engine.push(r);
        }
        engine.run_detection().expect("detection");
        let snap = engine.snapshot().expect("snapshot");
        assert_reports_identical(&snap, &batch);
        assert!(snap.windowed.is_some(), "windowed curve requested");
    }

    #[test]
    fn detection_and_windowed_curve_are_thread_count_invariant() {
        let log = smoke_log();
        let mut reference: Option<(Vec<RegimeShift>, Vec<u64>, Vec<u64>)> = None;
        for threads in [1usize, 4] {
            let cfg = StreamConfig {
                analysis: AutoSensConfig {
                    threads,
                    ..AutoSensConfig::default()
                },
                detector: Some(DetectorConfig::default()),
                decay_half_life_ms: Some(2 * 86_400_000),
                ..stream_config()
            };
            let mut engine = StreamEngine::new(cfg, Slice::all()).expect("engine");
            for r in log.iter() {
                engine.push(r);
            }
            let shifts = engine.run_detection().expect("detection");
            let snap = engine.snapshot().expect("snapshot");
            let w = snap.windowed.as_ref().expect("windowed curve");
            let wb: Vec<u64> = w.biased.counts().iter().map(|c| c.to_bits()).collect();
            let wu: Vec<u64> = w.unbiased.counts().iter().map(|c| c.to_bits()).collect();
            match &reference {
                None => reference = Some((shifts, wb, wu)),
                Some((s0, b0, u0)) => {
                    assert_eq!(&shifts, s0, "shifts diverged at threads={threads}");
                    assert_eq!(&wb, b0, "windowed biased diverged at threads={threads}");
                    assert_eq!(&wu, u0, "windowed unbiased diverged at threads={threads}");
                }
            }
        }
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let engine = StreamEngine::new(stream_config(), Slice::all()).expect("engine");
        let mut ck = engine.checkpoint(0);
        ck.version = 99;
        assert!(matches!(ck.validate(), Err(StreamError::Corrupt(_))));

        // A record filed under the wrong bucket must not restore.
        let log = smoke_log();
        let mut engine = StreamEngine::new(stream_config(), Slice::all()).expect("engine");
        for r in log.iter().take(100) {
            engine.push(r);
        }
        let mut ck = engine.checkpoint(0);
        assert!(!ck.shards.is_empty());
        ck.shards[0].bucket += 1_000_000;
        let err = StreamEngine::restore(ck, Slice::all(), Recorder::disabled());
        assert!(matches!(err, Err(StreamError::Corrupt(_))));
    }

    #[test]
    fn sliding_window_evicts_and_reports_partial_coverage() {
        let log = smoke_log();
        let mut cfg = stream_config();
        cfg.retain_ms = Some(3 * 24 * 3_600_000); // keep ~3 of 14 days
        let mut engine = StreamEngine::new(cfg, Slice::all()).expect("engine");
        for r in log.iter() {
            engine.push(r);
        }
        let status = engine.status();
        assert!(status.evicted > 0, "nothing was evicted");
        assert!(status.live_records < log.len() as u64);
        let snap = engine.snapshot().expect("snapshot");
        assert!(snap
            .degradations
            .iter()
            .any(|d| d.stage == "stream" && d.detail.contains("evicted")));
        assert!(snap.n_actions + status.evicted >= status.live_records);
    }

    #[test]
    fn ingestor_sheds_over_capacity_and_counts_it() {
        let recorder = Recorder::new();
        let ingestor = Ingestor::new(4, OverflowPolicy::Shed, recorder.clone());
        let log = smoke_log();
        let records: Vec<ActionRecord> = log.iter().take(10).collect();
        let mut shed = 0;
        for r in &records {
            if ingestor.offer(*r) == Offer::Shed {
                shed += 1;
            }
        }
        assert_eq!(ingestor.queue_depth(), 4);
        assert_eq!(shed, 6);
        assert_eq!(ingestor.shed(), 6);
        let snap = recorder.metrics().snapshot();
        assert_eq!(snap.counter("autosens_stream_shed_events_total"), Some(6));
        assert_eq!(snap.gauge("autosens_stream_queue_depth"), Some(4.0));

        let mut engine = StreamEngine::new(stream_config(), Slice::all()).expect("engine");
        let summary = ingestor.drain_into(&mut engine).expect("drain");
        assert_eq!(summary.pushed, 4);
        assert_eq!(ingestor.queue_depth(), 0);
        assert_eq!(
            recorder
                .metrics()
                .snapshot()
                .gauge("autosens_stream_queue_depth"),
            Some(0.0)
        );
    }

    #[test]
    fn ingestor_blocks_with_backpressure() {
        let ingestor = Ingestor::new(2, OverflowPolicy::Block, Recorder::disabled());
        let log = smoke_log();
        let mut it = log.iter();
        assert_eq!(ingestor.offer(it.next().unwrap()), Offer::Accepted);
        assert_eq!(ingestor.offer(it.next().unwrap()), Offer::Accepted);
        assert_eq!(ingestor.offer(it.next().unwrap()), Offer::Full);
        assert_eq!(ingestor.queue_depth(), 2, "a Full offer must not enqueue");
        assert_eq!(ingestor.shed(), 0);
    }

    #[test]
    fn fault_stream_at_the_ingest_boundary_matches_batch_injection() {
        // Records offered through an Ingestor wearing a FaultStream come
        // out byte-identical to FaultPlan::apply over the same records.
        let log = smoke_log();
        let plan = FaultPlan {
            seed: 0x57AE,
            ops: vec![
                FaultOp::DropUniform { rate: 0.1 },
                FaultOp::Duplicate { rate: 0.1 },
            ],
        };
        let expected = plan.apply(&log).expect("batch injection");

        let ingestor = Ingestor::new(usize::MAX >> 1, OverflowPolicy::Shed, Recorder::disabled());
        ingestor.set_faults(Some(FaultStream::new(&plan).expect("fault stream")));
        for r in log.iter() {
            ingestor.offer(r);
        }
        let mut engine = StreamEngine::new(stream_config(), Slice::all()).expect("engine");
        let summary = ingestor.drain_into(&mut engine).expect("drain");
        assert_eq!(summary.pushed, expected.len());
        assert_eq!(engine.status().events, expected.len() as u64);
    }
}
