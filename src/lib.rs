//! Workspace umbrella crate for the AutoSens reproduction.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`) that exercise the public
//! APIs of the member crates together. It re-exports the member crates under
//! short names so examples read naturally.

pub use autosens_core as core;
pub use autosens_sim as sim;
pub use autosens_stats as stats;
pub use autosens_telemetry as telemetry;
