#!/usr/bin/env sh
# Local CI gate: everything a PR must pass, in the order a failure is
# cheapest to notice. Run from the repo root.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all green"
