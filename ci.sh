#!/usr/bin/env sh
# Local CI gate: everything a PR must pass, in the order a failure is
# cheapest to notice. Run from the repo root.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -q --all-targets -- -D warnings"
cargo clippy -q --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc -q --no-deps"
cargo doc -q --no-deps

echo "==> plan-layer enforcement (no deprecated analyze_* calls outside crates/core)"
# The analysis plan layer is the single public entry point; the historical
# AutoSens::analyze* methods are #[deprecated] shims living out one release
# inside crates/core. No caller elsewhere may construct the stage sequence
# by hand or call a shim.
if grep -rnE '\.analyze(_slice|_view|_prepared|_slice_with_ci|_view_with_ci)?\(' \
    --include='*.rs' crates tests examples | grep -v '^crates/core/'; then
    echo "ci.sh: deprecated analyze_* call outside crates/core (use AnalysisPlan::run)" >&2
    exit 1
fi

echo "==> profiled smoke run (stage spans + finite metrics)"
# End-to-end observability gate: generate a smoke log, analyze it with
# profiling on, and fail if any documented pipeline stage is missing from
# the trace or any exported metric is non-finite (the CLI itself errors on
# non-finite metrics; the greps below are belt and braces).
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo build --release -q -p autosens-cli
./target/release/autosens generate --scenario smoke --out "$SMOKE_DIR/smoke.csv" --quiet
./target/release/autosens analyze --in "$SMOKE_DIR/smoke.csv" --ci 25 \
    --profile --trace-out "$SMOKE_DIR/trace.jsonl" \
    --metrics-out "$SMOKE_DIR/metrics.json" --quiet > /dev/null
for stage in sanitize lossmodel alpha biased_pdf unbiased_pdf smoothing normalization ci_bootstrap; do
    grep -q "\"$stage\"" "$SMOKE_DIR/trace.jsonl" || {
        echo "ci.sh: stage span '$stage' missing from trace" >&2
        exit 1
    }
done
if grep -Eq 'NaN|[Ii]nf|null' "$SMOKE_DIR/metrics.json"; then
    echo "ci.sh: non-finite value in metrics export" >&2
    exit 1
fi

echo "==> determinism gate (--threads 1 vs --threads 4)"
# The scheduler promises worker count is a pure throughput knob: the same
# analysis at 1 and 4 threads must export identical metrics. Timing-valued
# keys (ms suffixes) are excluded — wall clock is the one thing allowed to
# differ.
./target/release/autosens analyze --in "$SMOKE_DIR/smoke.csv" --ci 25 \
    --threads 1 --metrics-out "$SMOKE_DIR/metrics_t1.json" --quiet > /dev/null
./target/release/autosens analyze --in "$SMOKE_DIR/smoke.csv" --ci 25 \
    --threads 4 --metrics-out "$SMOKE_DIR/metrics_t4.json" --quiet > /dev/null
strip_timings() { grep -Ev '_(ms|seconds)"' "$1"; }
strip_timings "$SMOKE_DIR/metrics_t1.json" > "$SMOKE_DIR/metrics_t1.stripped"
strip_timings "$SMOKE_DIR/metrics_t4.json" > "$SMOKE_DIR/metrics_t4.stripped"
if ! diff -u "$SMOKE_DIR/metrics_t1.stripped" "$SMOKE_DIR/metrics_t4.stripped"; then
    echo "ci.sh: metrics diverged between --threads 1 and --threads 4" >&2
    exit 1
fi

echo "==> streaming-batch equivalence gate (analyze vs watch --until-eof)"
# The streaming engine promises that draining a finite log and snapshotting
# produces the *bit-identical* analysis the batch pipeline computes: same
# JSON report, same autosens_core_* counters. Any divergence — curve bits,
# degradation bookkeeping, record accounting — fails the build. Stream-side
# metrics (autosens_stream_*, exec chunk counts) legitimately differ, so the
# metrics diff is restricted to the core counters, timings excluded.
# The watch side runs with the observability plane fully on (--detect,
# --status-out): regime detection and the status export must not perturb
# the analysis by a single bit.
./target/release/autosens analyze --in "$SMOKE_DIR/smoke.csv" --json \
    --metrics-out "$SMOKE_DIR/metrics_batch.json" --quiet > "$SMOKE_DIR/report_batch.json"
./target/release/autosens watch --in "$SMOKE_DIR/smoke.csv" --until-eof --json \
    --detect --status-out "$SMOKE_DIR/status.json" \
    --metrics-out "$SMOKE_DIR/metrics_stream.json" --quiet > "$SMOKE_DIR/report_stream.json"
if ! diff -u "$SMOKE_DIR/report_batch.json" "$SMOKE_DIR/report_stream.json"; then
    echo "ci.sh: streamed report diverged from batch analyze" >&2
    exit 1
fi
for key in '"status"' '"queue_depth"' '"curve"' '"shard_lags"' '"recent_events"'; do
    grep -q "$key" "$SMOKE_DIR/status.json" || {
        echo "ci.sh: key $key missing from watch --status-out document" >&2
        exit 1
    }
done
# The export is pretty-printed (name and value on separate lines), so join
# first, then pick out name/value pairs for core counters, timings excluded.
core_counters() {
    tr -d ' \n' < "$1" \
        | grep -o '"name":"autosens_core_[a-z_]*","value":[0-9.e+-]*' \
        | grep -Ev '_(ms|seconds)"' | sort
}
core_counters "$SMOKE_DIR/metrics_batch.json" > "$SMOKE_DIR/core_batch.txt"
core_counters "$SMOKE_DIR/metrics_stream.json" > "$SMOKE_DIR/core_stream.txt"
test -s "$SMOKE_DIR/core_batch.txt" || {
    echo "ci.sh: no autosens_core_ counters found in batch metrics" >&2
    exit 1
}
if ! diff -u "$SMOKE_DIR/core_batch.txt" "$SMOKE_DIR/core_stream.txt"; then
    echo "ci.sh: core metrics diverged between batch analyze and streamed watch" >&2
    exit 1
fi

echo "==> golden analyze gate (byte-identical --json on the pinned fixture)"
# The columnar refactor (and anything after it) must be behavior-invariant:
# `analyze --loss-correct=off --json` over the pinned golden telemetry must
# reproduce the checked-in report byte for byte — curve bits, degradations,
# counts, all of it. The gate pins correction OFF because the fixture's
# organic day-to-day variation legitimately engages the loss estimator
# (default-on output adds a `loss` section and reweighted curves); the
# uncorrected path is the behavior-invariance contract. Regenerate the
# fixture ONLY for an intentional, reviewed behavior change:
#   gzip -dc tests/fixtures/golden_telemetry.csv.gz > /tmp/golden.csv
#   ./target/release/autosens analyze --in /tmp/golden.csv --json --quiet \
#       --loss-correct=off > tests/fixtures/golden_analyze.json
gzip -dc tests/fixtures/golden_telemetry.csv.gz > "$SMOKE_DIR/golden.csv"
./target/release/autosens analyze --in "$SMOKE_DIR/golden.csv" --json --quiet \
    --loss-correct=off > "$SMOKE_DIR/golden_report.json"
if ! diff -u tests/fixtures/golden_analyze.json "$SMOKE_DIR/golden_report.json"; then
    echo "ci.sh: analyze --loss-correct=off diverged from tests/fixtures/golden_analyze.json" >&2
    exit 1
fi

echo "==> container equivalence gate (convert + binary analyze vs text analyze)"
# The `.asc` binary container is a pure transport: converting the golden
# fixture and analyzing the container through the zero-parse mmap path must
# reproduce the text path's JSON byte for byte (and therefore the pinned
# golden report, transitively).
./target/release/autosens convert --in "$SMOKE_DIR/golden.csv" \
    --out "$SMOKE_DIR/golden.asc" --quiet
./target/release/autosens analyze --in "$SMOKE_DIR/golden.asc" --json --quiet \
    --loss-correct=off > "$SMOKE_DIR/golden_report_asc.json"
if ! diff -u "$SMOKE_DIR/golden_report.json" "$SMOKE_DIR/golden_report_asc.json"; then
    echo "ci.sh: analyze over the converted container diverged from the text path" >&2
    exit 1
fi

echo "==> serve gate (gateway-served curve byte-identical to batch analyze, restart included)"
# The multi-tenant gateway promises each tenant's served curve is the
# batch `analyze --json` output for the same records, byte for byte —
# and that a killed gateway restarted from its checkpoint directory
# still serves those exact bytes. Fed the pinned golden fixture (with
# correction off, matching the golden gate above), the served curve is
# therefore transitively pinned to tests/fixtures/golden_analyze.json.
# The gateway binds port 0 and reports its addresses via --ready-file.
./target/release/autosens serve --listen 127.0.0.1:0 --http 127.0.0.1:0 \
    --loss-correct=off --checkpoint-dir "$SMOKE_DIR/ckpt" \
    --ready-file "$SMOKE_DIR/ready.txt" --quiet & SERVE_PID=$!
for _ in $(seq 1 100); do test -s "$SMOKE_DIR/ready.txt" && break; sleep 0.1; done
test -s "$SMOKE_DIR/ready.txt" || { echo "ci.sh: gateway never became ready" >&2; exit 1; }
INGEST_ADDR=$(awk '/^INGEST/{print $2}' "$SMOKE_DIR/ready.txt")
HTTP_ADDR=$(awk '/^HTTP/{print $2}' "$SMOKE_DIR/ready.txt")
./target/release/autosens agent --to "$INGEST_ADDR" --in "$SMOKE_DIR/golden.csv" \
    --service mail --region eu --quiet

# Incremental-snapshot sub-gate, run before the first /curve query so the
# first fleet pass is genuinely cold (a /curve query itself populates the
# snapshot cache). Dirty tracking promises a second fleet-wide pass with
# no new events serves every tenant from the report cache: byte-identical
# curve, >=10x faster. /snapshot runs a pass and returns FleetSnapshotStats.
./target/release/autosens query --addr "$HTTP_ADDR" --path /snapshot \
    > "$SMOKE_DIR/snap_cold.json"
./target/release/autosens query --addr "$HTTP_ADDR" --path /tenant/mail/eu/curve \
    > "$SMOKE_DIR/served_curve_cold.json"
./target/release/autosens query --addr "$HTTP_ADDR" --path /snapshot \
    > "$SMOKE_DIR/snap_warm.json"
./target/release/autosens query --addr "$HTTP_ADDR" --path /tenant/mail/eu/curve \
    > "$SMOKE_DIR/served_curve.json"
if ! diff -u "$SMOKE_DIR/served_curve_cold.json" "$SMOKE_DIR/served_curve.json"; then
    echo "ci.sh: cache-served curve diverged from the cold snapshot's curve" >&2
    exit 1
fi
if ! diff -u "$SMOKE_DIR/golden_report.json" "$SMOKE_DIR/served_curve.json"; then
    echo "ci.sh: gateway-served curve diverged from batch analyze" >&2
    exit 1
fi
snap_field() { tr -d ' \n' < "$1" | grep -o "\"$2\":[0-9.e+-]*" | cut -d: -f2; }
COLD_MS=$(snap_field "$SMOKE_DIR/snap_cold.json" wall_ms)
WARM_MS=$(snap_field "$SMOKE_DIR/snap_warm.json" wall_ms)
WARM_REUSED=$(snap_field "$SMOKE_DIR/snap_warm.json" reused)
WARM_TENANTS=$(snap_field "$SMOKE_DIR/snap_warm.json" tenants)
if [ "$WARM_REUSED" != "$WARM_TENANTS" ] || [ "$WARM_TENANTS" = "0" ]; then
    echo "ci.sh: warm fleet snapshot recomputed a clean tenant (reused $WARM_REUSED of $WARM_TENANTS)" >&2
    exit 1
fi
if ! awk -v c="$COLD_MS" -v w="$WARM_MS" 'BEGIN { exit !(c >= 10 * w) }'; then
    echo "ci.sh: warm fleet snapshot not >=10x faster (cold ${COLD_MS} ms, warm ${WARM_MS} ms)" >&2
    exit 1
fi

kill "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true
rm -f "$SMOKE_DIR/ready.txt"
./target/release/autosens serve --listen 127.0.0.1:0 --http 127.0.0.1:0 \
    --loss-correct=off --checkpoint-dir "$SMOKE_DIR/ckpt" --resume \
    --ready-file "$SMOKE_DIR/ready.txt" --quiet & SERVE_PID=$!
for _ in $(seq 1 100); do test -s "$SMOKE_DIR/ready.txt" && break; sleep 0.1; done
test -s "$SMOKE_DIR/ready.txt" || { echo "ci.sh: restarted gateway never became ready" >&2; exit 1; }
HTTP_ADDR=$(awk '/^HTTP/{print $2}' "$SMOKE_DIR/ready.txt")
./target/release/autosens query --addr "$HTTP_ADDR" --path /tenant/mail/eu/curve \
    > "$SMOKE_DIR/served_curve_restarted.json"
kill "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true
if ! diff -u "$SMOKE_DIR/golden_report.json" "$SMOKE_DIR/served_curve_restarted.json"; then
    echo "ci.sh: restarted gateway served a different curve than before the kill" >&2
    exit 1
fi

echo "==> robustness frontier gate (corrected beats naive under planted loss)"
# Fixed-seed bias-vs-loss-rate frontier: the artifact plants uniform and
# bursty drop mechanisms, analyzes with correction on and off, and its
# shape checks assert the corrected curve is strictly closer to the clean
# truth at >= 20% bursty (MNAR) loss while doing no harm under uniform
# (MCAR) thinning. The runner exits nonzero if any check fails.
cargo build --release -q -p autosens-experiments
./target/release/autosens-experiments robustness --bench > /dev/null

echo "==> regime detection gate (planted boundaries caught, clean run silent)"
# Ground-truth scoring of the online regime-shift detector: the artifact
# plants two congestion regimes with known boundaries, and its shape
# checks assert every boundary is reported by the pooled level detector,
# in the right direction, within 8 detector buckets (2 h of event time at
# the default 15-minute bucket), with ZERO alarms on an identically
# seeded clean twin. See DESIGN.md §6g for the detector math and the
# provenance of the bound. The runner exits nonzero if any check fails.
./target/release/autosens-experiments regime --bench > /dev/null

echo "==> ci.sh: all green"
