//! Per-action-type latency sensitivity (the paper's §3.2 / Figure 4
//! scenario): compare how sharply user activity drops with latency for
//! SelectMail, SwitchFolder, Search, and ComposeSend.
//!
//! Run with:
//! ```sh
//! cargo run --release --example action_types
//! ```

use autosens_core::report::{f3, text_table};
use autosens_core::{AutoSens, AutoSensConfig};
use autosens_sim::{generate, Scenario, SimConfig};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::UserClass;

fn main() {
    let (log, _) = generate(&SimConfig::scenario(Scenario::Default)).expect("valid scenario");
    let engine = AutoSens::new(AutoSensConfig::default());

    // Business users, as in Figure 4.
    let base = Slice::all().class(UserClass::Business);
    let results = engine.by_action_type(&log, &base);

    let grid = [500.0, 1000.0, 1500.0, 2000.0];
    let mut rows = Vec::new();
    for (action, result) in &results {
        match result {
            Ok(report) => {
                let mut row = vec![format!("{action:?}"), report.n_actions.to_string()];
                for l in grid {
                    row.push(
                        report
                            .preference
                            .at(l)
                            .map(f3)
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                rows.push(row);
            }
            Err(e) => {
                eprintln!("{action:?}: analysis failed: {e}");
            }
        }
    }
    println!("normalized latency preference by action type (business users, ref 300 ms)\n");
    println!(
        "{}",
        text_table(
            &["action", "n", "@500ms", "@1000ms", "@1500ms", "@2000ms"],
            &rows
        )
    );
    println!(
        "expect: SelectMail steepest, then SwitchFolder; Search shallow;\n\
         ComposeSend (asynchronous UI) nearly flat — as in the paper's Figure 4."
    );
}
