//! Conditioning to speed (the paper's §3.4 / Figure 6 scenario): group users
//! into quartiles by their per-user median latency and compare each
//! quartile's latency sensitivity. Users accustomed to fast service (Q1)
//! should be the most sensitive.
//!
//! Run with:
//! ```sh
//! cargo run --release --example conditioning_quartiles
//! ```

use autosens_core::report::{f3, text_table};
use autosens_core::{AutoSens, AutoSensConfig};
use autosens_sim::{generate, Scenario, SimConfig};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};
use autosens_telemetry::users::LatencyQuartiles;

fn main() {
    let (log, _) = generate(&SimConfig::scenario(Scenario::Default)).expect("valid scenario");
    let engine = AutoSens::new(AutoSensConfig::default());

    // Consumer SelectMail, as in Figure 6.
    let base = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Consumer);
    let (quartiles, results) = engine
        .by_latency_quartile(&log, &base, 20)
        .expect("enough users for quartiles");

    println!(
        "quartile cuts at per-user median latency: {:.0} / {:.0} / {:.0} ms\n",
        quartiles.cuts[0], quartiles.cuts[1], quartiles.cuts[2]
    );

    let grid = [600.0, 900.0, 1200.0];
    let mut rows = Vec::new();
    for (q, result) in &results {
        match result {
            Ok(report) => {
                let mut row = vec![
                    LatencyQuartiles::label(*q).to_string(),
                    quartiles.groups[*q].len().to_string(),
                    report.n_actions.to_string(),
                ];
                for l in grid {
                    row.push(
                        report
                            .preference
                            .at(l)
                            .map(f3)
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                rows.push(row);
            }
            Err(e) => eprintln!("Q{}: analysis failed: {e}", q + 1),
        }
    }
    println!(
        "{}",
        text_table(
            &["quartile", "users", "actions", "@600ms", "@900ms", "@1200ms"],
            &rows
        )
    );
    println!(
        "expect: sensitivity decreases monotonically from Q1 (fastest users)\n\
         to Q4 (slowest users) — users conditioned to speed react more\n\
         strongly to latency, as in the paper's Figure 6."
    );
}
