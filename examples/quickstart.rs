//! Quickstart: generate an OWA-like telemetry log, run the full AutoSens
//! pipeline on it, and print the normalized latency preference curve.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use autosens_core::report::{default_grid, f3, text_table};
use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_sim::{generate, Scenario, SimConfig};

fn main() {
    // 1. Data. In a real deployment this would be your own telemetry
    //    imported through `autosens_telemetry::codec`; here we synthesize a
    //    two-month OWA-like log with a planted, known latency preference.
    let sim_config = SimConfig::scenario(Scenario::Default);
    println!(
        "generating {} days of telemetry for {} users...",
        sim_config.days,
        sim_config.n_users()
    );
    let (log, _truth) = generate(&sim_config).expect("valid scenario");
    println!("generated {} action records\n", log.len());

    // 2. Analysis, with the paper's parameters: 10 ms bins, Savitzky-Golay
    //    (window 101, degree 3), 300 ms reference, hourly activity-factor
    //    correction for the time-of-day confounder.
    let plan = AnalysisPlan::new(AutoSensConfig::default());
    let report = plan
        .run(PlanInput::log(&log), RunOptions::default())
        .expect("analysis succeeds")
        .report;

    // 3. Results.
    println!(
        "analyzed {} successful actions; fitted span {:.0}..{:.0} ms\n",
        report.n_actions,
        report.preference.span_ms().0,
        report.preference.span_ms().1
    );
    let rows: Vec<Vec<String>> = default_grid()
        .iter()
        .filter_map(|&l| {
            report.preference.at(l).map(|v| {
                vec![
                    format!("{l:.0}"),
                    f3(v),
                    format!("{:.0}%", (1.0 - v) * 100.0),
                ]
            })
        })
        .collect();
    println!(
        "{}",
        text_table(
            &[
                "latency (ms)",
                "normalized preference",
                "activity reduction vs 300 ms"
            ],
            &rows
        )
    );
}
