//! Non-sticky services (the paper's §4 future direction): measure latency
//! sensitivity as *session abandonment* instead of action-rate modulation.
//!
//! Generates session-structured telemetry with a planted continuation
//! curve, reconstructs sessions from the raw log, and prints the
//! normalized continuation-vs-latency curve next to the planted truth.
//!
//! Run with:
//! ```sh
//! cargo run --release --example nonsticky_sessions
//! ```

use autosens_core::abandonment::session_continuation;
use autosens_core::report::{f3, text_table};
use autosens_core::AutoSensConfig;
use autosens_sim::config::{Scenario, SimConfig};
use autosens_sim::sessions::{generate_sessions, SessionConfig};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::UserClass;

fn main() {
    let mut cfg = SimConfig::scenario(Scenario::Smoke);
    cfg.days = 21;
    let scfg = SessionConfig::default();
    println!(
        "generating {} days of session telemetry for {} users...",
        cfg.days,
        cfg.n_users()
    );
    let (log, _) = generate_sessions(&cfg, &scfg).expect("valid configs");
    println!("generated {} action records\n", log.len());

    let analysis = AutoSensConfig::default();
    let gap_ms = 10 * 60_000;
    for class in UserClass::all() {
        let sub = Slice::all().class(class).successes().apply(&log);
        let report = session_continuation(&sub, &analysis, gap_ms).expect("fits");
        let planted = scfg.continuation(class);
        println!(
            "{}: {} sessions, mean length {:.1}, overall continuation {:.3}",
            class.name(),
            report.stats.n_sessions,
            report.stats.mean_session_len,
            report.stats.overall_continuation()
        );
        let rows: Vec<Vec<String>> = [400.0, 600.0, 800.0, 1000.0, 1200.0]
            .iter()
            .filter_map(|&l| {
                report.continuation.at(l).map(|v| {
                    vec![
                        format!("{l:.0}"),
                        f3(v),
                        f3(planted.eval(l) / planted.eval(300.0)),
                    ]
                })
            })
            .collect();
        println!(
            "{}",
            text_table(
                &["latency (ms)", "measured continuation", "planted truth"],
                &rows
            )
        );
    }
    println!(
        "Reading: a value of 0.8 at some latency means a user is 20% less\n\
         likely to continue the session after an action at that latency\n\
         than after one at the 300 ms reference."
    );
}
