//! Bring-your-own-telemetry: export a log to CSV, read it back (as an
//! operator would with their own web-access logs), validate the
//! natural-experiment preconditions, and run the analysis.
//!
//! Run with:
//! ```sh
//! cargo run --release --example custom_telemetry
//! ```

use autosens_core::locality::{density_latency_correlation, locality_report};
use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_sim::{generate, Scenario, SimConfig};
use autosens_telemetry::codec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Stand-in for "your own telemetry": a generated log exported to CSV.
    // The only contract is the CSV schema in `codec::CSV_HEADER`:
    //   time_ms,action,latency_ms,user,class,tz_offset_ms,outcome
    let (log, _) = generate(&SimConfig::scenario(Scenario::Smoke)).expect("valid scenario");
    let mut csv = Vec::new();
    codec::write_csv(&log, &mut csv).expect("serialize");
    println!(
        "exported {} records ({} MiB of CSV)",
        log.len(),
        csv.len() / (1 << 20)
    );

    // ... time passes; the CSV comes back from your data warehouse ...
    let log = codec::read_csv(csv.as_slice()).expect("well-formed CSV");
    println!("imported {} records\n", log.len());

    // Step 1: check the preconditions. AutoSens needs latency to be
    // temporally local (predictable), otherwise users cannot act on a
    // preference and the method measures nothing.
    let mut rng = StdRng::seed_from_u64(1);
    let loc = locality_report(&log.view(), &mut rng).expect("non-trivial log");
    println!(
        "locality check (Figure 1): MSD/MAD actual {:.3}, shuffled {:.3}, sorted {:.4}",
        loc.msd_mad_actual, loc.msd_mad_shuffled, loc.msd_mad_sorted
    );
    if !loc.has_locality() {
        eprintln!("warning: little temporal locality; preference estimates may be weak");
    }
    let corr = density_latency_correlation(&log.view(), 60_000).expect("non-trivial log");
    println!(
        "per-minute action density vs mean latency: r = {:.3} over {} windows\n",
        corr.correlation, corr.n_windows
    );

    // Step 2: run the analysis.
    let plan = AnalysisPlan::new(AutoSensConfig::default());
    match plan.run(PlanInput::log(&log), RunOptions::default()) {
        Ok(out) => {
            let report = out.report;
            println!("normalized latency preference (ref 300 ms):");
            for l in [500.0, 800.0, 1200.0] {
                match report.preference.at(l) {
                    Some(v) => println!("  {l:>6.0} ms -> {v:.3}"),
                    None => println!("  {l:>6.0} ms -> (outside supported span)"),
                }
            }
        }
        Err(e) => eprintln!("analysis failed: {e}"),
    }
}
