//! Minimal offline stand-in for `crossbeam`, covering only
//! `crossbeam::thread::scope` + `Scope::spawn` and the `deque`
//! work-stealing primitives as used by this workspace.
//! Built on `std::thread::scope`; the outer `Result` mirrors crossbeam's
//! contract (Err iff some spawned thread panicked).

pub mod deque {
    //! Work-stealing deques with crossbeam's `Worker`/`Stealer`/`Injector`
    //! shape. The real crate uses a lock-free Chase–Lev deque; this
    //! stand-in wraps a `Mutex<VecDeque>`, which preserves the API and the
    //! scheduling semantics (LIFO owner pops, FIFO steals) at the chunk
    //! granularity this workspace schedules — coarse enough that lock
    //! contention is negligible.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was detected; the caller should try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// The owner end of a work-stealing queue.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A FIFO worker queue (crossbeam's `new_fifo`).
        pub fn new_fifo() -> Worker<T> {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// A LIFO worker queue (crossbeam's `new_lifo`); this stand-in
        /// only distinguishes the pop end, which is what matters for
        /// scheduling order.
        pub fn new_lifo() -> Worker<T> {
            Worker::new_fifo()
        }

        /// Push a task onto the owner end.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("deque lock").push_back(task);
        }

        /// Pop a task from the owner end (FIFO for `new_fifo`).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("deque lock").pop_front()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque lock").is_empty()
        }

        /// A handle other workers can steal from.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// A thief's handle onto another worker's queue.
    #[derive(Clone)]
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steal one task from the far end of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque lock").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque lock").is_empty()
        }
    }

    /// A shared FIFO injector queue all workers can push to and steal from.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("injector lock").push_back(task);
        }

        /// Steal one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("injector lock").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("injector lock").is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_pops_fifo_and_stealer_takes_the_far_end() {
            let w = Worker::new_fifo();
            w.push(1);
            w.push(2);
            w.push(3);
            let s = w.stealer();
            assert_eq!(s.steal(), Steal::Success(3));
            assert_eq!(w.pop(), Some(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push("a");
            inj.push("b");
            assert_eq!(inj.steal(), Steal::Success("a"));
            assert_eq!(inj.steal(), Steal::Success("b"));
            assert!(inj.is_empty());
            assert_eq!(inj.steal(), Steal::Empty);
        }

        #[test]
        fn steal_success_accessor() {
            assert_eq!(Steal::Success(7).success(), Some(7));
            assert_eq!(Steal::<i32>::Empty.success(), None);
            assert_eq!(Steal::<i32>::Retry.success(), None);
        }
    }
}

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Wrapper over `std::thread::Scope` so callers keep crossbeam's
    /// `scope.spawn(|_| ...)` closure shape.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which threads borrowing local state may be
    /// spawned; all are joined before this returns. `Err` iff the closure or
    /// an un-joined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_propagates() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|scope| {
                let handles: Vec<_> = data
                    .iter()
                    .map(|v| scope.spawn(move |_| *v * 2))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 20);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
