//! Minimal offline stand-in for `crossbeam`, covering only
//! `crossbeam::thread::scope` + `Scope::spawn` as used by this workspace.
//! Built on `std::thread::scope`; the outer `Result` mirrors crossbeam's
//! contract (Err iff some spawned thread panicked).

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Wrapper over `std::thread::Scope` so callers keep crossbeam's
    /// `scope.spawn(|_| ...)` closure shape.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which threads borrowing local state may be
    /// spawned; all are joined before this returns. `Err` iff the closure or
    /// an un-joined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_propagates() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|scope| {
                let handles: Vec<_> = data
                    .iter()
                    .map(|v| scope.spawn(move |_| *v * 2))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 20);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
