//! Minimal offline stand-in for `proptest`.
//!
//! Covers the API subset this workspace uses: the `proptest!` macro with
//! `pat in strategy` arguments and an optional `#![proptest_config(..)]`,
//! range strategies, `Just`, `any::<T>()`, `prop_oneof!`,
//! `prop::collection::vec`, `prop::bool::ANY`, `.prop_map`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated deterministically
//! from the test name and case index; there is no shrinking — on failure
//! the offending inputs are printed in full instead.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Runner configuration (only `cases` matters in this stub).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps the suite fast while
        // still exploring the space (cases are deterministic anyway).
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of arbitrary values. Unlike real proptest there is no value
/// tree / shrinking: `generate` directly produces one value per case.
pub trait Strategy {
    type Value: Debug + Clone;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Debug + Clone>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug + Clone,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives; built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug + Clone> OneOf<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T: Debug + Clone> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Helper used by `prop_oneof!` so all arms unify through inference.
pub fn __box_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::__box_strategy($arm)),+])
    };
}

// ------------------------------------------------------------- primitives

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Debug + Clone + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix of ordinary magnitudes and raw bit patterns (which include
        // NaN and infinities), mirroring proptest's adversarial spirit.
        match rng.below(4) {
            0 => f64::from_bits(rng.next_u64()),
            _ => (rng.unit_f64() - 0.5) * 2.0e9,
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// `prop::bool::ANY`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// `prop::option::of(strategy)` — `None` half the time, `Some` of the
    /// inner strategy otherwise.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::fmt::Debug;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for `vec` (inclusive on both ends).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug + Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::hash_set(element, len)`. Like real proptest, the
    /// requested size bounds the number of *draws*, so collisions can
    /// yield a smaller set.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Debug + Clone + Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ----------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9, K 10, L 11)
}

/// FNV-1a, used to derive a per-test base seed from the test's name.
pub fn __fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ----------------------------------------------------------------- macros

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_cases {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    $crate::__fnv(concat!(module_path!(), "::", stringify!($name))),
                    __case as u64,
                );
                let __vals = ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let ($($pat,)+) = ::std::clone::Clone::clone(&__vals);
                    $body
                }));
                if let ::std::result::Result::Err(__panic) = __outcome {
                    ::std::eprintln!(
                        "proptest {} failed at case {}/{} with inputs:\n{:#?}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        &__vals
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
