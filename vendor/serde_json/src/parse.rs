//! Recursive-descent JSON parser producing the vendored serde `Value`.

use crate::Error;
use serde::{Number, Value};

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let col = consumed
            .iter()
            .rev()
            .take_while(|&&b| b != b'\n')
            .count()
            + 1;
        Error::at(msg.to_string(), line, col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            // First occurrence wins on duplicate keys.
            if !entries.iter().any(|(k, _)| *k == key) {
                entries.push((key, val));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
