//! Minimal offline stand-in for `serde_json`: JSON text ⇄ the vendored
//! serde [`Value`] tree. Floats print via Rust's shortest-roundtrip `{}`
//! formatting with a trailing `.0` forced for whole numbers (so `1.0`
//! round-trips as `1.0`, which the codec tests rely on); non-finite floats
//! serialize as `null`, matching real serde_json.

use serde::{Deserialize, Serialize};

pub use serde::{Number, Value};

mod parse;

/// Error for both serialization and parsing (message + optional position).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// 1-based line/column of a parse error, when known.
    pos: Option<(usize, usize)>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error {
            msg: msg.into(),
            pos: None,
        }
    }

    fn at(msg: impl Into<String>, line: usize, col: usize) -> Error {
        Error {
            msg: msg.into(),
            pos: Some((line, col)),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pos {
            Some((line, col)) => write!(f, "{} at line {} column {}", self.msg, line, col),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type (or [`Value`] itself).
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = parse::parse(input)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), items.len(), indent, depth, |o, x, d| {
            write_value(o, x, indent, d)
        }),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            indent,
            depth,
            |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
        ),
    }
}

/// Shared layout for arrays and objects (only the delimiters differ).
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) where
    I::Item: IsEntry,
{
    let (open, close) = if I::Item::IS_ENTRY {
        ('{', '}')
    } else {
        ('[', ']')
    };
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

/// Marker distinguishing object entries from array elements in `write_seq`.
trait IsEntry {
    const IS_ENTRY: bool;
}

impl IsEntry for &Value {
    const IS_ENTRY: bool = false;
}

impl IsEntry for &(String, Value) {
    const IS_ENTRY: bool = true;
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::UInt(u) => out.push_str(&u.to_string()),
        Number::Int(i) => out.push_str(&i.to_string()),
        Number::Float(f) if f.is_finite() => {
            let s = format!("{f}");
            out.push_str(&s);
            // `{}` prints whole floats without a fractional part; force one
            // so the value re-parses as a float, not an integer.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // serde_json serializes NaN/∞ as null.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_floats_keep_fraction() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&300.0f64).unwrap(), "300.0");
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
    }

    #[test]
    fn value_roundtrip() {
        let text = r#"{"a": [1, -2, 3.5], "b": null, "c": "x\"y", "d": true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0], 1u64);
        assert_eq!(v["a"][1], -2i64);
        assert_eq!(v["a"][2], 3.5);
        assert!(v["b"].is_null());
        assert_eq!(v["c"], "x\"y");
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn big_u64_roundtrips_exactly() {
        let id = u64::MAX - 3;
        let text = to_string(&id).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<Value>("{} x").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn pretty_prints_indented() {
        let v: Value = from_str(r#"{"a":[1]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ]\n}");
    }
}
