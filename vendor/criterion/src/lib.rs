//! Minimal offline stand-in for `criterion`: same macro/builder surface as
//! the real crate for the subset the workspace's benches use, but with a
//! simple wall-clock measurement loop (no statistics, plots, or reports).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to bench functions.
pub struct Criterion {
    /// Iterations per bench (small; this harness is a smoke-timer, not a
    /// statistical instrument).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchId, mut f: F) {
        run_bench(&id.into_bench_id(), self.sample_size, &mut f);
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchId, mut f: F) {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_bench(&full, self.sample_size, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_bench(&full, self.sample_size, &mut |b: &mut Bencher| b_input(b, input, &mut f));
    }

    pub fn finish(self) {}
}

fn b_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(b: &mut Bencher, input: &I, f: &mut F) {
    f(b, input)
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, iters: usize, f: &mut F) {
    let mut b = Bencher {
        iters: iters.max(1) as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    println!("bench {name}: {:.3} ms/iter ({} iters)", per_iter * 1e3, b.iters);
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.0
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
