//! Minimal offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the shapes this workspace
//! actually uses — named-field structs, tuple structs (newtypes serialize
//! transparently), and unit-variant enums (serialized as the variant name)
//! — honoring `#[serde(default)]` and `#[serde(default = "path")]`.
//! Implemented directly over `proc_macro::TokenTree` (no syn/quote, which
//! are unavailable offline). Unsupported shapes (generics, data-carrying
//! enums, unions) produce a clear `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

/// How a missing field is filled during deserialization.
#[derive(Clone, PartialEq)]
enum FieldDefault {
    /// No `#[serde(default)]`: delegate to `Deserialize::from_missing`.
    None,
    /// `#[serde(default)]`.
    StdDefault,
    /// `#[serde(default = "path")]`.
    Path(String),
}

struct Field {
    name: String,
    ty: String,
    default: FieldDefault,
}

enum VariantKind {
    Unit,
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, types: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Ser => gen_serialize(&item),
            Mode::De => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive stub produced invalid Rust: {e}\n{code}"))
}

// ---------------------------------------------------------------- parsing

/// Scan one `#[...]` attribute group for a serde field default.
fn attr_default(group: &proc_macro::Group, out: &mut FieldDefault) {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(inner)) = it.next() else {
        return;
    };
    let parts: Vec<TokenTree> = inner.stream().into_iter().collect();
    match parts.as_slice() {
        [TokenTree::Ident(id)] if id.to_string() == "default" => {
            *out = FieldDefault::StdDefault;
        }
        [TokenTree::Ident(id), TokenTree::Punct(eq), TokenTree::Literal(lit)]
            if id.to_string() == "default" && eq.as_char() == '=' =>
        {
            let raw = lit.to_string();
            let path = raw.trim_matches('"').to_string();
            *out = FieldDefault::Path(path);
        }
        _ => {}
    }
}

/// Consume leading attributes, recording any serde default directive.
fn skip_attrs(tokens: &[TokenTree], mut i: usize, default: &mut FieldDefault) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                attr_default(g, default);
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Consume a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut ignored = FieldDefault::None;
    let mut i = skip_attrs(&tokens, 0, &mut ignored);
    i = skip_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde stub: expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde stub: expected type name, got {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub: generic type `{name}` is not supported"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: parse_named_fields(g)?,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    types: parse_tuple_fields(g)?,
                })
            }
            _ => Err(format!("serde stub: unit struct `{name}` is not supported")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name: name.clone(),
                variants: parse_variants(g, &name)?,
            }),
            _ => Err(format!("serde stub: malformed enum `{name}`")),
        },
        other => Err(format!("serde stub: cannot derive for `{other}` items")),
    }
}

/// Render a type's token run back to source text.
fn type_text(tokens: &[TokenTree]) -> String {
    let mut out = String::new();
    for t in tokens {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&t.to_string());
    }
    out
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = FieldDefault::None;
        i = skip_attrs(&tokens, i, &mut default);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("serde stub: expected field name, got {other}")),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde stub: expected `:`, got {other}")),
        }
        // The type runs until a comma at zero angle-bracket depth (parens
        // and square brackets arrive as atomic groups).
        let start = i;
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            ty: type_text(&tokens[start..i]),
            default,
        });
        i += 1; // past the comma (or the end)
    }
    Ok(fields)
}

fn parse_tuple_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut types = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = FieldDefault::None;
        i = skip_attrs(&tokens, i, &mut default);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let start = i;
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        types.push(type_text(&tokens[start..i]));
        i += 1;
    }
    Ok(types)
}

fn parse_variants(group: &proc_macro::Group, enum_name: &str) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut ignored = FieldDefault::None;
        i = skip_attrs(&tokens, i, &mut ignored);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde stub: expected variant in `{enum_name}`, got {other}"
                ))
            }
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(parse_tuple_fields(g)?)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => break,
            Some(other) => {
                return Err(format!(
                    "serde stub: unexpected token {other} in enum `{enum_name}`"
                ))
            }
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__obj.push((::std::string::String::from({:?}), ::serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, types } => {
            if types.len() == 1 {
                // Newtype structs serialize transparently, like real serde.
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
                     }}"
                )
            } else {
                let elems: Vec<String> = (0..types.len())
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Value::Array(vec![{}])\n\
                         }}\n\
                     }}",
                    elems.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(::std::string::String::from({vname:?}))"
                        ),
                        VariantKind::Tuple(types) => {
                            let binds: Vec<String> =
                                (0..types.len()).map(|i| format!("__f{i}")).collect();
                            let inner = if types.len() == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![(::std::string::String::from({vname:?}), {inner})])",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({:?}), ::serde::Serialize::to_value({}))",
                                        f.name, f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(::std::string::String::from({vname:?}), ::serde::Value::Object(vec![{}]))])",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let missing = match &f.default {
                    FieldDefault::None => format!(
                        "<{} as ::serde::Deserialize>::from_missing({:?})?",
                        f.ty, f.name
                    ),
                    FieldDefault::StdDefault => "::std::default::Default::default()".to_string(),
                    FieldDefault::Path(path) => format!("{path}()"),
                };
                inits.push_str(&format!(
                    "{field}: match ::serde::__field(__obj, {fname:?}) {{\n\
                         ::std::option::Option::Some(__fv) => <{ty} as ::serde::Deserialize>::from_value(__fv).map_err(|e| e.in_field({fname:?}))?,\n\
                         ::std::option::Option::None => {missing},\n\
                     }},\n",
                    field = f.name,
                    fname = f.name,
                    ty = f.ty,
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
                         let __obj = match __v {{\n\
                             ::serde::Value::Object(entries) => entries,\n\
                             other => return ::std::result::Result::Err(::serde::DeError::type_mismatch(\"object\", other)),\n\
                         }};\n\
                         ::std::result::Result::Ok({name} {{\n\
                             {inits}\
                         }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, types } => {
            if types.len() == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(__v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
                             ::std::result::Result::Ok({name}(<{} as ::serde::Deserialize>::from_value(__v)?))\n\
                         }}\n\
                     }}",
                    types[0]
                )
            } else {
                let n = types.len();
                let elems: Vec<String> = types
                    .iter()
                    .enumerate()
                    .map(|(i, ty)| {
                        format!("<{ty} as ::serde::Deserialize>::from_value(&__items[{i}])?")
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(__v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
                             let __items = match __v {{\n\
                                 ::serde::Value::Array(items) if items.len() == {n} => items,\n\
                                 other => return ::std::result::Result::Err(::serde::DeError::type_mismatch(\"array of length {n}\", other)),\n\
                             }};\n\
                             ::std::result::Result::Ok({name}({}))\n\
                         }}\n\
                     }}",
                    elems.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            // Externally tagged, like real serde: unit variants are plain
            // strings; data-carrying variants are single-key objects.
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{vname:?} => return ::std::result::Result::Ok({name}::{vname})",
                        vname = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    let body = match &v.kind {
                        VariantKind::Unit => return None,
                        VariantKind::Tuple(types) if types.len() == 1 => format!(
                            "::std::result::Result::Ok({name}::{vname}(<{} as ::serde::Deserialize>::from_value(__inner)?))",
                            types[0]
                        ),
                        VariantKind::Tuple(types) => {
                            let n = types.len();
                            let elems: Vec<String> = types
                                .iter()
                                .enumerate()
                                .map(|(i, ty)| {
                                    format!("<{ty} as ::serde::Deserialize>::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{ let __items = match __inner {{\n\
                                     ::serde::Value::Array(items) if items.len() == {n} => items,\n\
                                     other => return ::std::result::Result::Err(::serde::DeError::type_mismatch(\"array of length {n}\", other)),\n\
                                 }};\n\
                                 ::std::result::Result::Ok({name}::{vname}({})) }}",
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let mut inits = String::new();
                            for f in fields {
                                let missing = match &f.default {
                                    FieldDefault::None => format!(
                                        "<{} as ::serde::Deserialize>::from_missing({:?})?",
                                        f.ty, f.name
                                    ),
                                    FieldDefault::StdDefault => {
                                        "::std::default::Default::default()".to_string()
                                    }
                                    FieldDefault::Path(path) => format!("{path}()"),
                                };
                                inits.push_str(&format!(
                                    "{field}: match ::serde::__field(__fields, {fname:?}) {{\n\
                                         ::std::option::Option::Some(__fv) => <{ty} as ::serde::Deserialize>::from_value(__fv).map_err(|e| e.in_field({fname:?}))?,\n\
                                         ::std::option::Option::None => {missing},\n\
                                     }},\n",
                                    field = f.name,
                                    fname = f.name,
                                    ty = f.ty,
                                ));
                            }
                            format!(
                                "{{ let __fields = match __inner {{\n\
                                     ::serde::Value::Object(entries) => entries,\n\
                                     other => return ::std::result::Result::Err(::serde::DeError::type_mismatch(\"object\", other)),\n\
                                 }};\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {inits} }}) }}"
                            )
                        }
                    };
                    Some(format!("{vname:?} => return {body}"))
                })
                .collect();
            let string_arm = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::String(__s) = __v {{\n\
                         match __s.as_str() {{\n\
                             {},\n\
                             _ => {{}}\n\
                         }}\n\
                     }}\n",
                    unit_arms.join(",\n")
                )
            };
            let object_arm = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::Object(__entries) = __v {{\n\
                         if __entries.len() == 1 {{\n\
                             let (__tag, __inner) = &__entries[0];\n\
                             match __tag.as_str() {{\n\
                                 {},\n\
                                 _ => {{}}\n\
                             }}\n\
                         }}\n\
                     }}\n",
                    tagged_arms.join(",\n")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
                         {string_arm}\
                         {object_arm}\
                         ::std::result::Result::Err(::serde::DeError::custom(format!(\"invalid value for enum {name}: {{:?}}\", __v)))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
