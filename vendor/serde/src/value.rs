//! The owned data-model tree shared by this serde stand-in and the
//! `serde_json` stand-in (which re-exports [`Value`]).

/// A JSON-style number, kept in three lanes so `u64`/`i64` round-trip
/// exactly (an `f64` lane alone would corrupt ids above 2^53).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    UInt(u64),
    Int(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::UInt(u) => *u as f64,
            Number::Int(i) => *i as f64,
            Number::Float(f) => *f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::UInt(a), Number::UInt(b)) => a == b,
            (Number::Int(a), Number::Int(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// Owned tree mirroring `serde_json::Value` for the API subset the
/// workspace uses (indexing, `as_*` accessors, equality with literals).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered; duplicate keys keep the first occurrence.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::UInt(u)) => Some(*u),
            Value::Number(Number::Int(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            Value::Number(Number::UInt(u)) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// `value.get("key")` / `value.get(3)`, returning `None` on mismatch.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Index types usable with [`Value::get`] and the `[]` operator.
pub trait ValueIndex {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value>;
}

impl ValueIndex for &str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == self).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl ValueIndex for String {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        self.as_str().index_into(v)
    }
}

impl ValueIndex for usize {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Array(items) => items.get(*self),
            _ => None,
        }
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;

    /// Missing keys index to `Null` (matching `serde_json`'s behavior)
    /// rather than panicking.
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
