//! Deserialization error type for the serde stand-in.

use crate::Value;

/// Message-carrying deserialization error (the stub has no byte offsets at
/// the data-model layer; `serde_json` adds positions for parse errors).
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl std::fmt::Display) -> DeError {
        DeError {
            msg: msg.to_string(),
        }
    }

    pub fn missing_field(field: &str) -> DeError {
        DeError {
            msg: format!("missing field `{field}`"),
        }
    }

    pub fn type_mismatch(expected: &str, got: &Value) -> DeError {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError {
            msg: format!("expected {expected}, got {kind}"),
        }
    }

    /// Prefix the error with the struct field it occurred in.
    pub fn in_field(self, field: &str) -> DeError {
        DeError {
            msg: format!("field `{field}`: {}", self.msg),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}
