//! Minimal offline stand-in for `serde`.
//!
//! The real serde is a zero-copy visitor framework; this vendored
//! replacement uses a much simpler model that is sufficient for every use
//! in this workspace: types convert to and from an owned [`Value`] tree
//! (the same tree `serde_json` re-exports as `serde_json::Value`), and the
//! companion `serde_derive` stub generates `Serialize`/`Deserialize` impls
//! for plain structs, tuple structs, and unit-variant enums, honoring
//! `#[serde(default)]` / `#[serde(default = "path")]`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod value;

pub use de::DeError;
pub use value::{Number, Value};

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Hook for struct fields absent from the input: most types treat a
    /// missing field as an error, `Option` yields `None` (matching real
    /// serde's behavior for optional fields).
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing_field(field))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = match v {
                    Value::Number(Number::UInt(u)) => Ok(*u),
                    Value::Number(Number::Int(i)) if *i >= 0 => Ok(*i as u64),
                    other => Err(DeError::type_mismatch("unsigned integer", other)),
                }?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {} out of range for {}", n, stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = match v {
                    Value::Number(Number::Int(i)) => Ok(*i),
                    Value::Number(Number::UInt(u)) if *u <= i64::MAX as u64 => Ok(*u as i64),
                    other => Err(DeError::type_mismatch("integer", other)),
                }?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {} out of range for {}", n, stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::type_mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Option<T>, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = match v {
                    Value::Array(items) => items,
                    other => return Err(DeError::type_mismatch("tuple (array)", other)),
                };
                let want = [$( stringify!($idx) ),+].len();
                if items.len() != want {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {}, got {}", want, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Lookup helper used by derive-generated `Deserialize` impls.
pub fn __field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}
