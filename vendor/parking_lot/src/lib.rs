//! Minimal offline stand-in for `parking_lot`: `Mutex`/`RwLock` with the
//! poison-free API, backed by `std::sync`. Declared as a dependency by the
//! simulator crate; kept API-compatible for the handful of methods that
//! matter.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
