//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the API surface the workspace uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (xoshiro256** seeded via splitmix64), and
//! [`seq::SliceRandom`] (`shuffle`/`choose`). All output is fully
//! deterministic for a given seed, which the fault-injection harness relies
//! on for byte-identical reproduction.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding, mirroring `rand::SeedableRng` (only `seed_from_u64` is used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Uniform f64 in [0, 1) from 53 random mantissa bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `gen_range`, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded integer draw (Lemire multiply-shift; the tiny
/// modulo bias of the plain approach is irrelevant here, but this is cheap).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc: i64 = rng.gen_range(-12i64..=12);
            assert!((-12..=12).contains(&inc));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
