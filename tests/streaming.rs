//! Streaming edge cases, end to end: the streaming engine against the
//! batch pipeline over the same (sometimes corrupted) telemetry.
//!
//! The two load-bearing properties under test:
//!
//! 1. **Equivalence** — after draining a finite log, `snapshot()` is
//!    bit-identical to batch `analyze`, including under reorder and
//!    duplicate fault injection at the ingest boundary.
//! 2. **Honest degradation** — what cannot be kept (late arrivals past
//!    the watermark) is counted and reported, never silently dropped.

use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_faults::{FaultOp, FaultPlan};
use autosens_obs::Recorder;
use autosens_stream::{Ingest, StreamConfig, StreamEngine};
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::SimTime;
use autosens_telemetry::TelemetryLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic pseudo-random log dense enough for the default
/// pipeline's per-bin support thresholds (same shape as the golden
/// fixture: ~30k records across ~9 days).
fn small_log(seed: u64) -> TelemetryLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0i64;
    let actions = ActionType::analyzed();
    let records: Vec<ActionRecord> = (0..30_000)
        .map(|_| {
            t += rng.gen_range(1_000i64..50_000);
            ActionRecord {
                time: SimTime(t),
                action: actions[rng.gen_range(0..actions.len())],
                latency_ms: rng.gen_range(50.0..1500.0),
                user: UserId(rng.gen_range(0..400)),
                class: if rng.gen_range(0..2) == 0 {
                    UserClass::Business
                } else {
                    UserClass::Consumer
                },
                tz_offset_ms: rng.gen_range(-3i64..=3) * 3_600_000,
                outcome: if rng.gen_range(0..30) == 0 {
                    Outcome::Error
                } else {
                    Outcome::Success
                },
            }
        })
        .collect();
    TelemetryLog::from_records(records).expect("valid records")
}

fn stream_config(lateness_ms: i64) -> StreamConfig {
    StreamConfig {
        analysis: AutoSensConfig::default(),
        shard_ms: 3_600_000,
        allowed_lateness_ms: lateness_ms,
        retain_ms: None,
        detector: None,
        decay_half_life_ms: None,
    }
}

fn assert_bit_identical(
    stream: &autosens_core::pipeline::AnalysisReport,
    batch: &autosens_core::pipeline::AnalysisReport,
) {
    assert_eq!(stream.n_actions, batch.n_actions, "action counts diverged");
    assert_eq!(
        stream.degradations, batch.degradations,
        "degradations diverged"
    );
    let bits = |s: &[(f64, f64)]| -> Vec<(u64, u64)> {
        s.iter().map(|(x, y)| (x.to_bits(), y.to_bits())).collect()
    };
    assert_eq!(
        bits(&stream.preference.series()),
        bits(&batch.preference.series()),
        "preference curves diverged at the bit level"
    );
    let hist_bits = |h: &autosens_stats::histogram::Histogram| -> Vec<u64> {
        h.counts().iter().map(|c| c.to_bits()).collect()
    };
    assert_eq!(hist_bits(&stream.biased), hist_bits(&batch.biased));
    assert_eq!(hist_bits(&stream.unbiased), hist_bits(&batch.unbiased));
}

#[test]
fn streamed_snapshot_equals_batch_on_clean_input() {
    let log = small_log(0x5EED);
    let batch = AnalysisPlan::new(AutoSensConfig::default())
        .run(PlanInput::log(&log), RunOptions::default())
        .expect("batch")
        .report;
    let mut engine = StreamEngine::new(
        stream_config(3_600_000),
        autosens_telemetry::query::Slice::all(),
    )
    .expect("engine");
    for r in log.iter() {
        engine.push(r);
    }
    let snap = engine.snapshot().expect("snapshot");
    assert_bit_identical(&snap, &batch);
    assert!(snap.degradations.is_empty(), "clean input must not degrade");
}

#[test]
fn reorder_and_duplicate_injection_preserve_equivalence() {
    // Jitter + duplication at the ingest boundary: the stream admits
    // everything (lateness covers 2x the max shift — a +shift outlier
    // advances the frontier, a -shift outlier arrives behind it) and must
    // still match batch over the corrupted log bit for bit, with both
    // paths reporting the same reorder/duplicate degradations.
    let log = small_log(0xF417);
    let max_shift_ms = 10 * 60_000;
    let plan = FaultPlan {
        seed: 0xBAD5,
        ops: vec![
            FaultOp::Reorder {
                rate: 0.25,
                max_shift_ms,
            },
            FaultOp::Duplicate { rate: 0.05 },
        ],
    };
    let corrupted = plan.apply(&log).expect("inject");
    let batch = AnalysisPlan::new(AutoSensConfig::default())
        .run(PlanInput::log(&corrupted), RunOptions::default())
        .expect("batch")
        .report;

    let recorder = Recorder::new();
    let mut engine = StreamEngine::with_recorder(
        stream_config(2 * max_shift_ms),
        autosens_telemetry::query::Slice::all(),
        recorder.clone(),
    )
    .expect("engine");
    let mut late = 0u64;
    let mut dups = 0u64;
    for r in corrupted.iter() {
        match engine.push(r) {
            Ingest::Late => late += 1,
            Ingest::Duplicate => dups += 1,
            _ => {}
        }
    }
    assert_eq!(late, 0, "lateness budget must cover the injected jitter");
    assert!(dups > 0, "duplicate injection produced no duplicates");

    let snap = engine.snapshot().expect("snapshot");
    assert_bit_identical(&snap, &batch);
    assert!(
        snap.degradations
            .iter()
            .any(|d| d.detail.contains("out of time order")),
        "reorder must be reported"
    );
    assert!(
        snap.degradations
            .iter()
            .any(|d| d.detail.contains("exact duplicate")),
        "duplicate removal must be reported"
    );

    // The documented degradation counters incremented.
    let metrics = recorder.metrics().snapshot();
    assert_eq!(
        metrics.counter("autosens_stream_duplicate_events_total"),
        Some(dups)
    );
    assert_eq!(
        metrics.counter("autosens_stream_events_total"),
        Some(corrupted.len() as u64)
    );
}

#[test]
fn late_arrival_past_watermark_is_counted_and_dropped() {
    let log = small_log(0x1A7E);
    let recorder = Recorder::new();
    let mut engine = StreamEngine::with_recorder(
        stream_config(30_000),
        autosens_telemetry::query::Slice::all(),
        recorder.clone(),
    )
    .expect("engine");
    for r in log.iter() {
        engine.push(r);
    }
    let frontier = engine.status().max_event_time_ms.expect("frontier");

    // One success record exactly at the watermark is still admitted
    // (low-watermark is inclusive) ...
    let mut boundary = log.iter().next().unwrap();
    boundary.time = SimTime(frontier - 30_000);
    boundary.outcome = Outcome::Success;
    boundary.latency_ms = 123.0;
    assert_eq!(engine.push(boundary), Ingest::Admitted);

    // ... one millisecond older is late: counted, dropped, reported.
    let mut too_old = boundary;
    too_old.time = SimTime(frontier - 30_001);
    assert_eq!(engine.push(too_old), Ingest::Late);

    let status = engine.status();
    assert_eq!(status.late, 1);
    assert_eq!(
        recorder
            .metrics()
            .snapshot()
            .counter("autosens_stream_late_events_total"),
        Some(1)
    );
    let snap = engine.snapshot().expect("snapshot");
    let late_degr = snap
        .degradations
        .iter()
        .find(|d| d.stage == "stream")
        .expect("late drop must surface as a degradation");
    assert!(late_degr.detail.contains("1 events"));
    assert!(late_degr.detail.contains("watermark"));
}

#[test]
fn duplicate_event_ids_dedup_identically_to_batch_sanitize() {
    // Hand-build a log with exact duplicates (same every field) plus
    // near-duplicates (same time, different latency): streaming must keep
    // exactly what batch sanitize keeps.
    let base = small_log(0xD0D0);
    let mut records: Vec<ActionRecord> = base.iter().collect();
    let mut rng = StdRng::seed_from_u64(0xEC0);
    let mut with_dups = Vec::with_capacity(records.len() + 600);
    for r in records.drain(..) {
        with_dups.push(r);
        match rng.gen_range(0..20) {
            0 => with_dups.push(r), // exact duplicate, adjacent
            1 => {
                let mut near = r;
                near.latency_ms += 1.0; // same instant, different sample
                with_dups.push(near);
            }
            _ => {}
        }
    }
    let corrupted = TelemetryLog::from_trusted_records(with_dups);
    let batch = AnalysisPlan::new(AutoSensConfig::default())
        .run(PlanInput::log(&corrupted), RunOptions::default())
        .expect("batch")
        .report;

    let mut engine = StreamEngine::new(
        stream_config(3_600_000),
        autosens_telemetry::query::Slice::all(),
    )
    .expect("engine");
    let mut dups = 0u64;
    for r in corrupted.iter() {
        if engine.push(r) == Ingest::Duplicate {
            dups += 1;
        }
    }
    assert!(dups > 0);
    let snap = engine.snapshot().expect("snapshot");
    assert_bit_identical(&snap, &batch);
    let dup_degr = snap
        .degradations
        .iter()
        .find(|d| d.detail.contains("exact duplicate"))
        .expect("duplicate removal reported");
    assert_eq!(
        dup_degr.detail,
        format!("removed {dups} exact duplicate records"),
        "stream and batch must count duplicates identically"
    );
}

#[test]
fn resume_rejects_checkpoint_past_source_end() {
    // A checkpoint whose recorded source byte offset exceeds the current
    // file length means the source was truncated or replaced since the
    // checkpoint was written; seeking there would resume on unrelated
    // bytes. Resume must refuse with the typed error instead.
    let log = small_log(0x7A11);
    let mut engine = StreamEngine::new(
        stream_config(3_600_000),
        autosens_telemetry::query::Slice::all(),
    )
    .expect("engine");
    for r in log.iter() {
        engine.push(r);
    }
    let ck = engine.checkpoint(1_000_000);

    // In-memory guard: shorter source fails typed, exact length passes.
    match ck.check_source_length(999) {
        Err(autosens_stream::StreamError::TruncatedSource { offset, len }) => {
            assert_eq!(offset, 1_000_000);
            assert_eq!(len, 999);
        }
        other => panic!("expected TruncatedSource, got {other:?}"),
    }
    ck.check_source_length(1_000_000)
        .expect("offset == length is a fully-consumed source, not truncation");

    // Filesystem guard, as `watch --resume` uses it: a real file too
    // short to contain the offset. The message must tell the operator
    // what happened and how to recover.
    let dir = std::env::temp_dir().join(format!("autosens_trunc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let src = dir.join("source.csv");
    std::fs::write(&src, b"time,action\n").expect("write");
    let err = ck
        .check_source_file(&src)
        .expect_err("a 12-byte file cannot contain offset 1,000,000");
    let msg = err.to_string();
    assert!(msg.contains("truncated"), "{msg}");
    assert!(msg.contains("delete the checkpoint"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_restore_then_drain_matches_uninterrupted_run() {
    let log = small_log(0xC4EC);
    let records: Vec<ActionRecord> = log.iter().collect();
    let cut = 2 * records.len() / 3;

    let mut uninterrupted = StreamEngine::new(
        stream_config(3_600_000),
        autosens_telemetry::query::Slice::all(),
    )
    .expect("engine");
    let mut interrupted = StreamEngine::new(
        stream_config(3_600_000),
        autosens_telemetry::query::Slice::all(),
    )
    .expect("engine");
    for &r in &records[..cut] {
        uninterrupted.push(r);
        interrupted.push(r);
    }
    // Serialize through JSON (the on-disk format), then resume.
    let json = interrupted.checkpoint(7).to_json().expect("serialize");
    drop(interrupted);
    let ck = autosens_stream::Checkpoint::from_json(&json).expect("parse");
    let mut resumed = StreamEngine::restore(
        ck,
        autosens_telemetry::query::Slice::all(),
        Recorder::disabled(),
    )
    .expect("restore");

    for &r in &records[cut..] {
        uninterrupted.push(r);
        resumed.push(r);
    }
    let a = uninterrupted.snapshot().expect("snapshot");
    let b = resumed.snapshot().expect("snapshot");
    assert_bit_identical(&a, &b);
    assert_eq!(uninterrupted.status(), resumed.status());

    // And both equal the batch answer over the full log.
    let batch = AnalysisPlan::new(AutoSensConfig::default())
        .run(PlanInput::log(&log), RunOptions::default())
        .expect("batch")
        .report;
    assert_bit_identical(&a, &batch);
}
