//! Cross-crate end-to-end behaviour: determinism, codec round-trips through
//! the full pipeline, month-over-month stability, the locality
//! preconditions, and the §3.5 bottleneck analysis.

mod common;

use autosens_core::bottleneck::bottleneck_report;
use autosens_core::locality::{density_latency_correlation, locality_report};
use autosens_telemetry::codec;
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};
use autosens_telemetry::time::Month;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn slice() -> Slice {
    Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business)
}

#[test]
fn full_pipeline_is_deterministic() {
    let (log, _) = common::data();
    let a = common::run_slice(log, &slice()).expect("fits");
    let b = common::run_slice(log, &slice()).expect("fits");
    assert_eq!(a.preference.series(), b.preference.series());
    assert_eq!(a.n_actions, b.n_actions);
}

#[test]
fn csv_roundtrip_preserves_the_analysis() {
    let (log, _) = common::data();
    let direct = common::run_slice(log, &slice()).expect("fits");

    let mut buf = Vec::new();
    codec::write_csv(log, &mut buf).expect("serialize");
    let back = codec::read_csv(buf.as_slice()).expect("parse");
    assert_eq!(back.len(), log.len());
    let roundtrip = common::run_slice(&back, &slice()).expect("fits");
    assert_eq!(direct.preference.series(), roundtrip.preference.series());
}

#[test]
fn preference_is_stable_across_months() {
    let (log, _) = common::data();
    let results = common::engine().by_month(log, &slice(), &[Month::Jan, Month::Feb]);
    let jan = results[0].1.as_ref().expect("Jan fits");
    let feb = results[1].1.as_ref().expect("Feb fits");
    let mut gap = 0.0;
    let mut n = 0;
    for l in (400..=1100).step_by(100) {
        if let (Some(a), Some(b)) = (jan.preference.at(l as f64), feb.preference.at(l as f64)) {
            gap += (a - b).abs();
            n += 1;
        }
    }
    assert!(n >= 6, "too few shared probes: {n}");
    let mae = gap / n as f64;
    assert!(mae < 0.10, "Jan/Feb MAE = {mae:.4}");
}

#[test]
fn locality_preconditions_hold_on_simulated_telemetry() {
    let (log, _) = common::data();
    let mut rng = StdRng::seed_from_u64(42);
    let loc = locality_report(&log.view(), &mut rng).expect("fits");
    assert!(loc.has_locality(), "{loc:?}");
    assert!(loc.msd_mad_actual < 0.6, "actual = {}", loc.msd_mad_actual);
    assert!((loc.msd_mad_shuffled - 1.0).abs() < 0.05);
    assert!(loc.msd_mad_sorted < 0.01);
    assert!(loc.von_neumann < 1.5, "von Neumann = {}", loc.von_neumann);

    let corr = density_latency_correlation(&log.view(), 60_000).expect("fits");
    assert!(corr.n_windows > 10_000);
    assert!(corr.correlation.abs() <= 1.0);
}

#[test]
fn drop_factors_stay_below_the_bottleneck_prediction() {
    let (log, _) = common::data();
    let report = common::run_slice(log, &slice()).expect("fits");
    let bn = bottleneck_report(&report.preference, 500.0);
    assert!(!bn.doublings.is_empty());
    let (_, _, first) = bn.doublings[0];
    assert!(
        first > 1.05 && first < 1.6,
        "500->1000 ms drop factor {first:.3} (paper ~1.3, bottleneck 2.0)"
    );
    assert!(bn.preference_dominates(), "{bn:?}");
}

#[test]
fn error_records_are_excluded_from_analysis() {
    let (log, _) = common::data();
    // The engine analyzes successes only; a log stripped of errors must
    // give the identical curve.
    let stripped = log.successes_only();
    let a = common::run_slice(log, &slice()).expect("fits");
    let b = common::run_slice(&stripped, &slice()).expect("fits");
    assert_eq!(a.n_actions, b.n_actions);
    assert_eq!(a.preference.series(), b.preference.series());
}
