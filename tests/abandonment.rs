//! Non-sticky-service extension (paper §4): recover the planted session
//! continuation curve from session-structured telemetry. Unlike the
//! rate-based preference pipeline, the continuation analysis conditions on
//! each action's own latency, so recovery is direct — a strong end-to-end
//! check of sessionization + fit.

use autosens_core::abandonment::session_continuation;
use autosens_core::AutoSensConfig;
use autosens_sim::config::{Scenario, SimConfig};
use autosens_sim::sessions::{generate_sessions, SessionConfig};
use autosens_telemetry::record::UserClass;

fn configs() -> (SimConfig, SessionConfig) {
    let mut cfg = SimConfig::scenario(Scenario::Smoke);
    cfg.days = 14;
    cfg.n_business = 300;
    cfg.n_consumer = 300;
    (cfg, SessionConfig::default())
}

#[test]
fn planted_continuation_curve_is_recovered() {
    let (cfg, scfg) = configs();
    let (log, _) = generate_sessions(&cfg, &scfg).expect("valid configs");
    assert!(log.len() > 30_000, "need volume, got {}", log.len());

    // Business slice (its planted curve is steeper).
    let business = autosens_telemetry::query::Slice::all()
        .class(UserClass::Business)
        .apply(&log);
    let report =
        session_continuation(&business, &AutoSensConfig::default(), 10 * 60_000).expect("fits");
    let c = &report.continuation;
    let q = scfg.continuation(UserClass::Business);

    // Direct recovery: measured normalized continuation tracks q(L)/q(300).
    let mut err = 0.0;
    let mut n = 0;
    for l in (400..=1200).step_by(100) {
        let l = l as f64;
        if let Some(m) = c.at(l) {
            let t = q.eval(l) / q.eval(300.0);
            err += (m - t).abs();
            n += 1;
        }
    }
    assert!(n >= 7, "too few supported probes: {n}");
    let mae = err / n as f64;
    assert!(mae < 0.06, "MAE vs planted continuation = {mae:.4}");

    // And the curve is genuinely informative: clear drop by 1000 ms.
    let v1000 = c.at(1000.0).expect("supported");
    assert!(v1000 < 0.85, "continuation(1000) = {v1000:.3}");
}

#[test]
fn business_abandons_faster_than_consumers() {
    let (cfg, scfg) = configs();
    let (log, _) = generate_sessions(&cfg, &scfg).expect("valid configs");
    let curve = |class: UserClass| {
        let slice = autosens_telemetry::query::Slice::all()
            .class(class)
            .apply(&log);
        session_continuation(&slice, &AutoSensConfig::default(), 10 * 60_000)
            .expect("fits")
            .continuation
    };
    let b = curve(UserClass::Business);
    let c = curve(UserClass::Consumer);
    for probe in [800.0, 1100.0] {
        let vb = b.at(probe).expect("supported");
        let vc = c.at(probe).expect("supported");
        assert!(
            vb < vc,
            "@{probe}: business continuation {vb:.3} should drop below consumer {vc:.3}"
        );
    }
}

#[test]
fn session_stats_are_plausible() {
    let (cfg, scfg) = configs();
    let (log, _) = generate_sessions(&cfg, &scfg).expect("valid configs");
    let report = session_continuation(&log, &AutoSensConfig::default(), 10 * 60_000).expect("fits");
    let s = &report.stats;
    assert!(s.n_sessions > 5_000);
    assert!(
        s.mean_session_len > 2.0 && s.mean_session_len < 20.0,
        "{s:?}"
    );
    // Overall continuation sits near base_continue x average q.
    let rate = s.overall_continuation();
    assert!(rate > 0.5 && rate < scfg.base_continue, "rate = {rate:.3}");
}
