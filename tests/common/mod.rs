//! Shared setup for the workspace integration tests: a 59-day,
//! reduced-population scenario. Two full months are needed so the
//! month-stability and confounder analyses have their real structure; the
//! population is trimmed to keep debug-mode test time reasonable.

use std::sync::OnceLock;

use autosens_core::{AutoSens, AutoSensConfig};
use autosens_sim::{generate, GroundTruth, Scenario, SimConfig};
use autosens_telemetry::TelemetryLog;

/// The validation scenario: both months, 600 users.
pub fn validation_config() -> SimConfig {
    let mut cfg = SimConfig::scenario(Scenario::Default);
    cfg.n_business = 300;
    cfg.n_consumer = 300;
    cfg
}

static DATA: OnceLock<(TelemetryLog, GroundTruth)> = OnceLock::new();

/// The shared validation dataset (generated once per test binary).
pub fn data() -> &'static (TelemetryLog, GroundTruth) {
    DATA.get_or_init(|| generate(&validation_config()).expect("valid config"))
}

/// An engine with the paper's default configuration.
pub fn engine() -> AutoSens {
    AutoSens::new(AutoSensConfig::default())
}
