//! Shared setup for the workspace integration tests: a 59-day,
//! reduced-population scenario. Two full months are needed so the
//! month-stability and confounder analyses have their real structure; the
//! population is trimmed to keep debug-mode test time reasonable.

use std::sync::OnceLock;

use autosens_core::ci::PreferenceCi;
use autosens_core::pipeline::AnalysisReport;
use autosens_core::{AnalysisPlan, AutoSens, AutoSensConfig, AutoSensError, PlanInput, RunOptions};
use autosens_sim::{generate, GroundTruth, Scenario, SimConfig};
use autosens_telemetry::query::Slice;
use autosens_telemetry::TelemetryLog;

/// The validation scenario: both months, 600 users.
pub fn validation_config() -> SimConfig {
    let mut cfg = SimConfig::scenario(Scenario::Default);
    cfg.n_business = 300;
    cfg.n_consumer = 300;
    cfg
}

static DATA: OnceLock<(TelemetryLog, GroundTruth)> = OnceLock::new();

/// The shared validation dataset (generated once per test binary).
pub fn data() -> &'static (TelemetryLog, GroundTruth) {
    DATA.get_or_init(|| generate(&validation_config()).expect("valid config"))
}

/// An engine with the paper's default configuration.
#[allow(dead_code)]
pub fn engine() -> AutoSens {
    AutoSens::new(AutoSensConfig::default())
}

/// Run the single plan entry point over one slice under the paper's
/// default configuration.
#[allow(dead_code)]
pub fn run_slice(log: &TelemetryLog, slice: &Slice) -> Result<AnalysisReport, AutoSensError> {
    AnalysisPlan::new(AutoSensConfig::default())
        .run(PlanInput::slice(log, slice), RunOptions::default())
        .map(|out| out.report)
}

/// Same run with a bootstrap confidence band.
#[allow(dead_code)]
pub fn run_slice_with_ci(
    log: &TelemetryLog,
    slice: &Slice,
    replicates: usize,
    level: f64,
) -> Result<(AnalysisReport, PreferenceCi), AutoSensError> {
    AnalysisPlan::new(AutoSensConfig::default())
        .run(
            PlanInput::slice(log, slice),
            RunOptions::with_ci(replicates, level),
        )
        .map(|out| (out.report, out.ci.expect("ci requested")))
}
