//! Minimal gzip codec for test fixtures (no external dependencies).
//!
//! The golden telemetry fixture is checked in gzip'd to keep the repo
//! small; the approved dependency set has no compression crate, so the
//! test harness carries its own RFC 1951/1952 decoder: stored, fixed-
//! Huffman, and dynamic-Huffman blocks, with CRC-32 and length verified
//! against the gzip trailer. Decompression is bit-by-bit — plenty fast
//! for a ~2 MB fixture, and simple enough to audit.
//!
//! `gzip_stored` is the matching writer used by fixture regeneration: it
//! emits valid (uncompressed, stored-block) gzip that any tool can read;
//! re-run `gzip -9 -n` on the result to shrink it before checking in.

/// Inflate a gzip file (header + DEFLATE stream + CRC/length trailer).
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, String> {
    if data.len() < 18 {
        return Err("gzip input shorter than the minimal header + trailer".into());
    }
    if data[0] != 0x1f || data[1] != 0x8b {
        return Err("missing gzip magic bytes".into());
    }
    if data[2] != 8 {
        return Err(format!("unsupported compression method {}", data[2]));
    }
    let flags = data[3];
    let mut pos = 10usize;
    if flags & 0x04 != 0 {
        // FEXTRA: two-byte little-endian length, then the payload.
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME / FCOMMENT: zero-terminated strings.
        if flags & flag != 0 {
            while *data.get(pos).ok_or("truncated gzip header")? != 0 {
                pos += 1;
            }
            pos += 1;
        }
    }
    if flags & 0x02 != 0 {
        pos += 2; // FHCRC
    }
    if pos + 8 > data.len() {
        return Err("gzip payload truncated".into());
    }
    let deflate = &data[pos..data.len() - 8];
    let out = inflate(deflate)?;
    let trailer = &data[data.len() - 8..];
    let want_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let want_len = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    if out.len() as u32 != want_len {
        return Err(format!(
            "gzip length mismatch: inflated {} bytes, trailer says {want_len}",
            out.len()
        ));
    }
    let got_crc = crc32(&out);
    if got_crc != want_crc {
        return Err(format!(
            "gzip CRC mismatch: computed {got_crc:#010x}, trailer says {want_crc:#010x}"
        ));
    }
    Ok(out)
}

/// Wrap raw bytes in a valid gzip container using stored (uncompressed)
/// DEFLATE blocks. Output is larger than the input by ~5 bytes per 64 KiB.
pub fn gzip_stored(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 64);
    // Header: magic, deflate, no flags, zero mtime, no extra flags, OS=255.
    out.extend_from_slice(&[0x1f, 0x8b, 8, 0, 0, 0, 0, 0, 0, 255]);
    let mut chunks = data.chunks(0xffff).peekable();
    if data.is_empty() {
        out.extend_from_slice(&[0x01, 0, 0, 0xff, 0xff]); // final empty stored block
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = if chunks.peek().is_none() { 1u8 } else { 0 };
        out.push(bfinal); // btype=00 (stored), byte-aligned after 3 header bits
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// IEEE CRC-32 (reflected, as gzip uses), bitwise — no table needed.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (!(crc & 1)).wrapping_add(1));
        }
    }
    !crc
}

struct BitReader<'a> {
    data: &'a [u8],
    byte: usize,
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader {
            data,
            byte: 0,
            bit: 0,
        }
    }

    fn take_bit(&mut self) -> Result<u32, String> {
        let b = *self.data.get(self.byte).ok_or("deflate stream truncated")?;
        let v = (b >> self.bit) as u32 & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.byte += 1;
        }
        Ok(v)
    }

    fn take_bits(&mut self, n: u32) -> Result<u32, String> {
        let mut v = 0u32;
        for i in 0..n {
            v |= self.take_bit()? << i;
        }
        Ok(v)
    }

    fn align_byte(&mut self) {
        if self.bit != 0 {
            self.bit = 0;
            self.byte += 1;
        }
    }
}

/// A canonical Huffman decoder built from code lengths (RFC 1951 §3.2.2).
struct Huffman {
    /// Codes per bit length, 1-indexed.
    counts: [u16; 16],
    /// Symbols ordered by (length, symbol).
    symbols: Vec<u16>,
}

impl Huffman {
    fn new(lengths: &[u8]) -> Result<Huffman, String> {
        let mut counts = [0u16; 16];
        for &l in lengths {
            if l > 15 {
                return Err(format!("huffman code length {l} out of range"));
            }
            counts[l as usize] += 1;
        }
        counts[0] = 0;
        let mut offsets = [0u16; 16];
        for l in 1..16 {
            offsets[l] = offsets[l - 1] + counts[l - 1];
        }
        let mut symbols = vec![0u16; lengths.iter().filter(|&&l| l > 0).count()];
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[offsets[l as usize] as usize] = sym as u16;
                offsets[l as usize] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    fn decode(&self, bits: &mut BitReader<'_>) -> Result<u16, String> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= bits.take_bit()? as i32;
            let count = self.counts[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + code - first) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err("invalid huffman code in deflate stream".into())
    }
}

const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Inflate a raw DEFLATE stream.
fn inflate(data: &[u8]) -> Result<Vec<u8>, String> {
    let mut bits = BitReader::new(data);
    let mut out: Vec<u8> = Vec::new();
    loop {
        let bfinal = bits.take_bit()?;
        let btype = bits.take_bits(2)?;
        match btype {
            0 => {
                // Stored block: byte-aligned LEN/NLEN then raw bytes.
                bits.align_byte();
                let start = bits.byte;
                if start + 4 > data.len() {
                    return Err("stored block header truncated".into());
                }
                let len = u16::from_le_bytes([data[start], data[start + 1]]) as usize;
                let nlen = u16::from_le_bytes([data[start + 2], data[start + 3]]);
                if nlen != !(len as u16) {
                    return Err("stored block LEN/NLEN mismatch".into());
                }
                let body = start + 4;
                if body + len > data.len() {
                    return Err("stored block body truncated".into());
                }
                out.extend_from_slice(&data[body..body + len]);
                bits.byte = body + len;
            }
            1 => {
                // Fixed Huffman tables (RFC 1951 §3.2.6).
                let mut lit_lengths = [0u8; 288];
                for (i, l) in lit_lengths.iter_mut().enumerate() {
                    *l = match i {
                        0..=143 => 8,
                        144..=255 => 9,
                        256..=279 => 7,
                        _ => 8,
                    };
                }
                let lit = Huffman::new(&lit_lengths)?;
                let dist = Huffman::new(&[5u8; 30])?;
                inflate_block(&mut bits, &lit, &dist, &mut out)?;
            }
            2 => {
                // Dynamic Huffman tables (RFC 1951 §3.2.7).
                let hlit = bits.take_bits(5)? as usize + 257;
                let hdist = bits.take_bits(5)? as usize + 1;
                let hclen = bits.take_bits(4)? as usize + 4;
                const ORDER: [usize; 19] = [
                    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
                ];
                let mut cl_lengths = [0u8; 19];
                for &idx in ORDER.iter().take(hclen) {
                    cl_lengths[idx] = bits.take_bits(3)? as u8;
                }
                let cl = Huffman::new(&cl_lengths)?;
                let mut lengths = vec![0u8; hlit + hdist];
                let mut i = 0;
                while i < lengths.len() {
                    let sym = cl.decode(&mut bits)?;
                    match sym {
                        0..=15 => {
                            lengths[i] = sym as u8;
                            i += 1;
                        }
                        16 => {
                            if i == 0 {
                                return Err("repeat code with no previous length".into());
                            }
                            let prev = lengths[i - 1];
                            let n = 3 + bits.take_bits(2)? as usize;
                            for _ in 0..n {
                                if i >= lengths.len() {
                                    return Err("code-length repeat overflow".into());
                                }
                                lengths[i] = prev;
                                i += 1;
                            }
                        }
                        17 | 18 => {
                            let n = if sym == 17 {
                                3 + bits.take_bits(3)? as usize
                            } else {
                                11 + bits.take_bits(7)? as usize
                            };
                            if i + n > lengths.len() {
                                return Err("code-length zero-run overflow".into());
                            }
                            i += n;
                        }
                        other => return Err(format!("invalid code-length symbol {other}")),
                    }
                }
                let lit = Huffman::new(&lengths[..hlit])?;
                let dist = Huffman::new(&lengths[hlit..])?;
                inflate_block(&mut bits, &lit, &dist, &mut out)?;
            }
            other => return Err(format!("invalid deflate block type {other}")),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

/// Decode one compressed block's literal/length + distance stream.
fn inflate_block(
    bits: &mut BitReader<'_>,
    lit: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
) -> Result<(), String> {
    loop {
        let sym = lit.decode(bits)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = (sym - 257) as usize;
                let len = LENGTH_BASE[idx] as usize + bits.take_bits(LENGTH_EXTRA[idx])? as usize;
                let dsym = dist.decode(bits)? as usize;
                if dsym >= 30 {
                    return Err(format!("invalid distance symbol {dsym}"));
                }
                let distance =
                    DIST_BASE[dsym] as usize + bits.take_bits(DIST_EXTRA[dsym])? as usize;
                if distance > out.len() {
                    return Err("back-reference before start of output".into());
                }
                // Byte-by-byte: references may overlap their own output.
                let start = out.len() - distance;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            other => return Err(format!("invalid literal/length symbol {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_roundtrip() {
        for payload in [&b""[..], b"hello", &[0u8; 100_000]] {
            let z = gzip_stored(payload);
            assert_eq!(gunzip(&z).expect("roundtrip"), payload);
        }
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut z = gzip_stored(b"telemetry");
        let n = z.len();
        z[n - 5] ^= 0xff; // flip a CRC byte
        assert!(gunzip(&z).unwrap_err().contains("CRC"));
    }
}
