//! Multi-region populations: the paper analyzes per-country slices (its
//! figures say "users in the U.S."). With users spread across timezones,
//! local-time structure differs per region; slicing by timezone offset
//! restores a homogeneous clock and the analysis recovers the truth per
//! region.

use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_sim::config::{Scenario, SimConfig};
use autosens_sim::generate;
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};
use autosens_telemetry::time::MS_PER_HOUR;

fn multi_region_config() -> SimConfig {
    let mut cfg = SimConfig::scenario(Scenario::Default);
    cfg.n_business = 400;
    cfg.n_consumer = 200;
    cfg.tz_offsets_hours = vec![0, -6];
    cfg
}

#[test]
fn records_carry_their_region_offset() {
    let (log, truth) = generate(&multi_region_config()).expect("valid");
    let offsets: std::collections::HashSet<i64> = log.iter().map(|r| r.tz_offset_ms).collect();
    assert_eq!(offsets.len(), 2);
    assert!(offsets.contains(&0));
    assert!(offsets.contains(&(-6 * MS_PER_HOUR)));
    // Population halves match the round-robin assignment.
    let n0 = truth
        .population()
        .iter()
        .filter(|u| u.tz_offset_ms == 0)
        .count();
    assert_eq!(n0, truth.population().len() / 2);
}

#[test]
fn per_region_slices_recover_the_preference() {
    let (log, truth) = generate(&multi_region_config()).expect("valid");
    let plan = AnalysisPlan::new(AutoSensConfig::default());
    for tz_hours in [0i64, -6] {
        let slice = Slice::all()
            .action(ActionType::SelectMail)
            .class(UserClass::Business)
            .tz_offset_hours(tz_hours);
        let report = plan
            .run(PlanInput::slice(&log, &slice), RunOptions::default())
            .unwrap_or_else(|e| panic!("region {tz_hours}: {e}"))
            .report;
        let mut err = 0.0;
        let mut n = 0;
        for l in (400..=1100).step_by(100) {
            if let Some(m) = report.preference.at(l as f64) {
                let t = truth.normalized_preference(
                    ActionType::SelectMail,
                    UserClass::Business,
                    l as f64,
                    300.0,
                );
                err += (m - t).abs();
                n += 1;
            }
        }
        assert!(n >= 6, "region {tz_hours}: too few probes");
        let mae = err / n as f64;
        assert!(
            mae < 0.12,
            "region {tz_hours}: MAE vs planted truth = {mae:.4}"
        );
    }
}

#[test]
fn regional_activity_peaks_follow_local_clocks() {
    let (log, _) = generate(&multi_region_config()).expect("valid");
    // Per region, business activity binned by *local* hour must peak
    // during local working hours and trough at local night — i.e. each
    // region follows its own clock, not the server's.
    for tz_ms in [0i64, -6 * MS_PER_HOUR] {
        let mut counts = [0usize; 24];
        for r in log.iter() {
            if r.tz_offset_ms == tz_ms && r.class == UserClass::Business {
                counts[r.time.hour_of_day_local(tz_ms) as usize] += 1;
            }
        }
        let peak = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(h, _)| h)
            .expect("non-empty");
        assert!(
            (8..=15).contains(&peak),
            "region {tz_ms}: local peak hour {peak} (counts {counts:?})"
        );
        let work: usize = (9..=15).map(|h| counts[h]).sum();
        let night: usize = (0..=5).map(|h| counts[h]).sum();
        assert!(
            work > 5 * night,
            "region {tz_ms}: working-hour activity should dwarf night ({work} vs {night})"
        );
    }
}
