//! End-to-end recovery of the planted ground truth: the headline claim of
//! this reproduction. The simulator plants known preference curves; the
//! AutoSens pipeline, seeing only the telemetry, must recover their shapes
//! and the orderings the paper reports in Figures 4–7.

mod common;

use autosens_faults::{FaultOp, FaultPlan};
use autosens_telemetry::loss::{estimate_cell_loss, LossCounts, LossEvidence};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::{DayPeriod, SimTime, MS_PER_DAY, MS_PER_HOUR};
use autosens_telemetry::TelemetryLog;
use proptest::prelude::*;

#[test]
fn selectmail_business_tracks_planted_truth() {
    let (log, truth) = common::data();
    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);
    let report = common::run_slice(log, &slice).expect("fits");

    let mut err = 0.0;
    let mut n = 0;
    for l in (400..=1200).step_by(100) {
        let l = l as f64;
        let measured = report.preference.at(l).expect("within span");
        let planted =
            truth.normalized_preference(ActionType::SelectMail, UserClass::Business, l, 300.0);
        err += (measured - planted).abs();
        n += 1;
    }
    let mae = err / n as f64;
    assert!(mae < 0.10, "MAE vs planted truth = {mae:.4}");
}

#[test]
fn recovered_curves_decrease_with_latency() {
    let (log, _) = common::data();
    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);
    let report = common::run_slice(log, &slice).expect("fits");
    let p = &report.preference;
    assert!((p.at(300.0).unwrap() - 1.0).abs() < 1e-9);
    // Decreasing through the well-supported range (allow small noise).
    let probes = [400.0, 600.0, 800.0, 1000.0, 1200.0];
    for w in probes.windows(2) {
        let a = p.at(w[0]).expect("supported");
        let b = p.at(w[1]).expect("supported");
        assert!(
            b < a + 0.05,
            "pref({}) = {a:.3} -> pref({}) = {b:.3}",
            w[0],
            w[1]
        );
    }
    // Overall drop is substantial.
    assert!(p.at(1200.0).unwrap() < 0.8);
}

#[test]
fn action_type_ordering_matches_figure4() {
    let (log, _) = common::data();
    let base = Slice::all().class(UserClass::Business);
    let results = common::engine().by_action_type(log, &base);
    let at = |a: ActionType, l: f64| -> f64 {
        results
            .iter()
            .find(|(x, _)| *x == a)
            .and_then(|(_, r)| r.as_ref().ok())
            .and_then(|r| r.preference.at(l))
            .unwrap_or(f64::NAN)
    };
    let probe = 1000.0;
    let sm = at(ActionType::SelectMail, probe);
    let sf = at(ActionType::SwitchFolder, probe);
    let se = at(ActionType::Search, probe);
    let cs = at(ActionType::ComposeSend, probe);
    assert!(sm < se, "SelectMail {sm:.3} vs Search {se:.3}");
    assert!(sf < se, "SwitchFolder {sf:.3} vs Search {se:.3}");
    assert!(se < cs + 0.05, "Search {se:.3} vs ComposeSend {cs:.3}");
    assert!(cs > 0.8, "ComposeSend should stay nearly flat, got {cs:.3}");
}

#[test]
fn business_users_are_more_sensitive_than_consumers() {
    let (log, _) = common::data();
    let base = Slice::all().action(ActionType::SelectMail);
    let results = common::engine().by_user_class(log, &base);
    let at = |c: UserClass, l: f64| -> f64 {
        results
            .iter()
            .find(|(x, _)| *x == c)
            .and_then(|(_, r)| r.as_ref().ok())
            .and_then(|r| r.preference.at(l))
            .unwrap_or(f64::NAN)
    };
    for probe in [800.0, 1000.0] {
        let b = at(UserClass::Business, probe);
        let c = at(UserClass::Consumer, probe);
        assert!(b < c, "@{probe}: business {b:.3} vs consumer {c:.3}");
    }
}

#[test]
fn latency_quartiles_order_by_conditioning() {
    let (log, _) = common::data();
    let base = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Consumer);
    let (quartiles, results) = common::engine()
        .by_latency_quartile(log, &base, 20)
        .expect("enough users");
    assert!(quartiles.cuts[0] < quartiles.cuts[2]);
    let at = |q: usize| -> Option<f64> {
        results
            .iter()
            .find(|(x, _)| *x == q)
            .and_then(|(_, r)| r.as_ref().ok())
            .and_then(|r| r.preference.at(900.0))
    };
    let q1 = at(0).expect("Q1 fits");
    let q4 = at(3).expect("Q4 fits");
    assert!(
        q1 < q4,
        "Q1 (fastest) should be more sensitive: Q1 {q1:.3} vs Q4 {q4:.3}"
    );
}

#[test]
fn daytime_is_more_sensitive_than_nighttime() {
    let (log, _) = common::data();
    let base = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);
    let results = common::engine().by_day_period(log, &base);
    // Nighttime slices are sparse (business activity collapses after 8pm),
    // so their fitted spans end earlier; probe at the highest latency all
    // available curves support, at least 600 ms.
    let pref = |p: DayPeriod| {
        results
            .iter()
            .find(|(x, _)| *x == p)
            .and_then(|(_, r)| r.as_ref().ok())
            .map(|r| &r.preference)
    };
    let morning_pref = pref(DayPeriod::Morning8to14).expect("morning fits");
    let night_prefs: Vec<_> = [DayPeriod::Evening20to2, DayPeriod::Night2to8]
        .into_iter()
        .filter_map(pref)
        .collect();
    assert!(!night_prefs.is_empty(), "no nighttime curve fit");
    let probe = night_prefs
        .iter()
        .chain(std::iter::once(&morning_pref))
        .map(|p| p.span_ms().1 - 55.0)
        .fold(900.0f64, f64::min);
    assert!(
        probe >= 600.0,
        "shared span too narrow: probe {probe:.0} ms"
    );
    let morning = morning_pref.at(probe).expect("within span");
    for np in &night_prefs {
        let nv = np.at(probe).expect("within span");
        assert!(
            morning < nv,
            "@{probe:.0}ms: morning {morning:.3} should be steeper than night {nv:.3}"
        );
    }
}

/// 14 days of heartbeat-regular telemetry, `per_hour` records per hour,
/// both classes interleaved — dense enough that injected drops leave
/// volume and sequence-gap evidence the loss estimator can read.
fn steady_log(per_hour: i64) -> TelemetryLog {
    let step = MS_PER_HOUR / per_hour;
    let mut records = Vec::new();
    for day in 0..14i64 {
        for hour in 0..24i64 {
            for k in 0..per_hour {
                records.push(ActionRecord {
                    time: SimTime(day * MS_PER_DAY + hour * MS_PER_HOUR + k * step),
                    action: ActionType::SelectMail,
                    latency_ms: 101.5,
                    user: UserId((k + hour) as u64),
                    class: if k % 2 == 0 {
                        UserClass::Business
                    } else {
                        UserClass::Consumer
                    },
                    tz_offset_ms: 0,
                    outcome: Outcome::Success,
                });
            }
        }
    }
    TelemetryLog::from_records(records).expect("valid records")
}

/// Loss evidence of a log, with the serial/parallel equivalence asserted
/// on the way: the batch `LossCounts` scan must equal chunked partials
/// merged out of order, bit for bit (the counts are unit `u64` additions,
/// which is what lets stream shards maintain them independently).
fn evidence_with_merge_check(log: &TelemetryLog) -> LossEvidence {
    let view = Slice::all().select(log);
    let serial = LossCounts::from_view(&view);
    let n = view.len();
    let bounds = [0, n / 4, n / 2, 3 * n / 4, n];
    let mut chunks: Vec<LossCounts> = bounds
        .windows(2)
        .map(|w| {
            let mut part = LossCounts::new();
            for i in w[0]..w[1] {
                part.record(
                    SimTime(view.time_at(i)),
                    view.tz_offset_at(i),
                    view.class_at(i),
                );
            }
            part
        })
        .collect();
    let mut merged = LossCounts::new();
    for i in [2usize, 0, 3, 1] {
        merged.merge(&std::mem::take(&mut chunks[i]));
    }
    assert_eq!(merged, serial, "chunk-merged counts diverged from batch");
    let ev = estimate_cell_loss(&view, &serial);
    assert_eq!(
        ev,
        estimate_cell_loss(&view, &merged),
        "evidence diverged between serial and merged counts"
    );
    ev
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Uniform (MCAR) thinning of heartbeat-regular telemetry: the
    /// sequence-gap estimator counts the missing beats, so the overall
    /// estimated rate recovers the planted drop probability.
    #[test]
    fn loss_estimator_recovers_uniform_drop_rate(
        seed in 0u64..1u64 << 48,
        rate in 0.10f64..0.35,
    ) {
        let log = steady_log(30);
        let plan = FaultPlan {
            seed,
            ops: vec![FaultOp::DropUniform { rate }],
        };
        let dropped = plan.apply(&log).expect("inject");
        let est = evidence_with_merge_check(&dropped).overall_rate;
        prop_assert!(
            (est - rate).abs() < 0.05,
            "planted {rate:.3}, estimated {est:.3}"
        );
    }

    /// Bursty (MNAR) run-dropping: gap and volume shortfalls against the
    /// median day recover most of the loss that actually lands (the
    /// injector's realized fraction saturates below the nominal rate, so
    /// the reference is measured, not nominal). The log is dense enough
    /// that a mean burst (40 records = 10 min) is interior to an hour —
    /// bursts that straddle a slot boundary hide their truncated edges
    /// from the gap estimator, and the volume baselines are themselves
    /// thinned when many days are hit, so the estimator is structurally
    /// conservative. The bound is one-sided-tight: never an
    /// overestimate, never less than half the truth.
    #[test]
    fn loss_estimator_recovers_bursty_drop_rate(
        seed in 0u64..1u64 << 48,
        rate in 0.15f64..0.45,
    ) {
        let log = steady_log(240);
        let plan = FaultPlan {
            seed,
            ops: vec![FaultOp::DropBursty { rate, mean_burst: 40 }],
        };
        let dropped = plan.apply(&log).expect("inject");
        let actual = 1.0 - dropped.len() as f64 / log.len() as f64;
        let est = evidence_with_merge_check(&dropped).overall_rate;
        prop_assert!(
            est >= 0.5 * actual && est <= actual + 0.02,
            "realized {actual:.3}, estimated {est:.3}"
        );
    }
}

#[test]
fn truth_orderings_are_planted_correctly() {
    // Sanity on the ground truth itself (guards against simulator
    // regressions that would make the recovery tests vacuous).
    let (_, truth) = common::data();
    let l = 1200.0;
    let n = |a, c| truth.normalized_preference(a, c, l, 300.0);
    assert!(
        n(ActionType::SelectMail, UserClass::Business) < n(ActionType::Search, UserClass::Business)
    );
    assert!(
        n(ActionType::SelectMail, UserClass::Business)
            < n(ActionType::SelectMail, UserClass::Consumer)
    );
    assert!(n(ActionType::ComposeSend, UserClass::Business) > 0.9);
}
