//! Golden-curve regression test.
//!
//! A small fixed telemetry log is checked in under `tests/fixtures/`
//! together with the normalized preference curve the pipeline produced for
//! it. Any change to sanitize, α estimation, the unbiased estimator,
//! smoothing, or normalization that moves the curve — even in the last
//! bits — fails this test, so numerical drift has to be a deliberate,
//! reviewed fixture update rather than an accident.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! cargo test --test golden_curve -- --ignored regenerate_golden_fixture
//! ```

use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_telemetry::codec;
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::SimTime;
use autosens_telemetry::TelemetryLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[path = "common/gzip.rs"]
mod gzip;

const LOG_PATH: &str = "tests/fixtures/golden_telemetry.csv.gz";
const CURVE_PATH: &str = "tests/fixtures/golden_curve.json";
const MAX_ABS_DEVIATION: f64 = 1e-9;

/// Read and inflate the gzip'd fixture log (checked in compressed to keep
/// the repo small; see `tests/common/gzip.rs` for the decoder).
fn read_fixture_log() -> TelemetryLog {
    let compressed = std::fs::read(LOG_PATH).expect("fixture log exists (see module docs)");
    let csv = gzip::gunzip(&compressed).expect("fixture log inflates");
    codec::read_csv(std::io::BufReader::new(csv.as_slice())).expect("fixture log parses")
}

/// The fixture source: a deterministic pseudo-random fortnight of telemetry,
/// small enough to check in, rich enough to exercise the full default
/// pipeline (α correction included).
fn build_fixture_log() -> TelemetryLog {
    let mut rng = StdRng::seed_from_u64(0x601D);
    let mut t = 0i64;
    let records: Vec<ActionRecord> = (0..30_000)
        .map(|_| {
            t += rng.gen_range(1_000i64..50_000);
            let actions = ActionType::analyzed();
            ActionRecord {
                time: SimTime(t),
                action: actions[rng.gen_range(0..actions.len())],
                latency_ms: rng.gen_range(50.0..1500.0),
                user: UserId(rng.gen_range(0..400)),
                class: if rng.gen_range(0..2) == 0 {
                    UserClass::Business
                } else {
                    UserClass::Consumer
                },
                tz_offset_ms: rng.gen_range(-5i64..=5) * 3_600_000,
                outcome: if rng.gen_range(0..40) == 0 {
                    Outcome::Error
                } else {
                    Outcome::Success
                },
            }
        })
        .collect();
    TelemetryLog::from_records(records).expect("fixture records are valid")
}

fn analyze(log: &TelemetryLog, threads: usize) -> Vec<(f64, f64)> {
    // Loss correction is pinned off: the fixture contract is the
    // *uncorrected* pipeline (the fixture's irregular pseudo-random
    // arrivals organically trip the loss estimator's gap evidence, and
    // the corrected curve legitimately differs — ci.sh pins the same
    // contract on `analyze --loss-correct=off`).
    let plan = AnalysisPlan::new(AutoSensConfig {
        threads,
        loss_correct: false,
        ..AutoSensConfig::default()
    });
    plan.run(PlanInput::log(log), RunOptions::default())
        .expect("fixture analysis succeeds")
        .report
        .preference
        .series()
}

#[test]
fn golden_curve_matches_fixture() {
    let log = read_fixture_log();
    let expected: Vec<(f64, f64)> =
        serde_json::from_str(&std::fs::read_to_string(CURVE_PATH).expect("fixture curve exists"))
            .expect("fixture curve parses");
    assert!(!expected.is_empty());

    // The curve must match the checked-in golden copy at every grid point,
    // serially and through the chunked scheduler alike.
    for threads in [1, 4] {
        let series = analyze(&log, threads);
        assert_eq!(
            series.len(),
            expected.len(),
            "threads={threads}: curve length changed"
        );
        let mut worst = 0.0f64;
        for (&(x, y), &(ex, ey)) in series.iter().zip(&expected) {
            assert_eq!(x.to_bits(), ex.to_bits(), "threads={threads}: grid moved");
            worst = worst.max((y - ey).abs());
        }
        assert!(
            worst < MAX_ABS_DEVIATION,
            "threads={threads}: max abs deviation {worst:e} >= {MAX_ABS_DEVIATION:e}"
        );
    }
}

#[test]
fn fixture_log_matches_its_generator() {
    // The checked-in CSV must stay in sync with `build_fixture_log` — if
    // someone edits one without the other, point the finger here, not at
    // the curve comparison.
    let on_disk = read_fixture_log();
    let built = build_fixture_log();
    assert_eq!(on_disk.len(), built.len(), "fixture record count changed");
}

#[test]
#[ignore = "writes tests/fixtures/; run manually after an intentional curve change"]
fn regenerate_golden_fixture() {
    std::fs::create_dir_all("tests/fixtures").expect("create fixtures dir");
    let log = build_fixture_log();
    let mut csv = Vec::new();
    codec::write_csv(&log, &mut csv).expect("write fixture log");
    // Stored-block gzip keeps the harness dependency-free; run
    // `gzip -9 -n` over the CSV afterwards to shrink the container before
    // checking it in (any valid gzip stream passes the decoder).
    std::fs::write(LOG_PATH, gzip::gzip_stored(&csv)).expect("write fixture log");
    let series = analyze(&log, 1);
    std::fs::write(
        CURVE_PATH,
        serde_json::to_string_pretty(&series).expect("curve serializes"),
    )
    .expect("write fixture curve");
    eprintln!(
        "regenerated {LOG_PATH} ({} records) and {CURVE_PATH} ({} points)",
        log.len(),
        series.len()
    );
}
