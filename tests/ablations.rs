//! Quality ablations for the design choices in DESIGN.md §6 (the runtime
//! counterparts live in `crates/bench/benches/ablations.rs`):
//!
//! * the user *sensing model* — recovery must survive the behaviourally
//!   realistic EMA model, not just the oracle;
//! * the *unbiased draw budget* — more draws must not change the answer,
//!   only its noise;
//! * the *smoothing operator* — Savitzky–Golay vs. simple alternatives.

mod common;

use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_sim::generate;
use autosens_sim::preference::SensingMode;
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};

fn slice() -> Slice {
    Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business)
}

#[test]
fn recovery_survives_realistic_sensing_models() {
    // Regenerate the validation scenario under each sensing model. The
    // oracle plants the exact curve; Level removes per-action noise from
    // the user's decision; EMA delays sensing through experienced latency.
    // All three must yield a decreasing preference; the EMA curve may be
    // diluted but must still show clear sensitivity.
    for (name, mode, max_at_1000) in [
        ("oracle", SensingMode::Oracle, 0.85),
        ("level", SensingMode::Level, 0.85),
        ("ema", SensingMode::Ema { beta: 0.9 }, 0.97),
    ] {
        let mut cfg = common::validation_config();
        cfg.sensing = mode;
        let (log, _) = generate(&cfg).expect("valid");
        let report = common::run_slice(&log, &slice()).unwrap_or_else(|e| panic!("{name}: {e}"));
        let v500 = report.preference.at(500.0).expect("supported");
        let v1000 = report.preference.at(1000.0).expect("supported");
        assert!(
            v1000 < v500,
            "{name}: curve should decrease ({v500:.3} -> {v1000:.3})"
        );
        assert!(
            v1000 < max_at_1000,
            "{name}: expected sensitivity at 1000 ms, got {v1000:.3}"
        );
    }
}

#[test]
fn draw_budget_changes_noise_not_signal() {
    let (log, _) = common::data();
    let run = |draws: usize| {
        AnalysisPlan::new(AutoSensConfig {
            unbiased_draws: draws,
            ..AutoSensConfig::default()
        })
        .run(PlanInput::slice(log, &slice()), RunOptions::default())
        .expect("fits")
        .report
    };
    let small = run(96_000);
    let large = run(480_000);
    for probe in [500.0, 800.0, 1100.0] {
        let a = small.preference.at(probe).expect("supported");
        let b = large.preference.at(probe).expect("supported");
        assert!(
            (a - b).abs() < 0.08,
            "@{probe}: {a:.3} (96k draws) vs {b:.3} (480k draws)"
        );
    }
}

#[test]
fn savgol_beats_simple_smoothers_on_curve_fidelity() {
    // Fit the same raw ratio with SavGol, a moving average, and a median
    // filter, and compare against the planted truth. SavGol must be at
    // least as faithful as the alternatives (it preserves curvature that a
    // boxcar flattens).
    use autosens_stats::{savgol::SavGol, smoothing};
    let (log, truth) = common::data();
    let report = common::run_slice(log, &slice()).expect("fits");
    let raw = report.preference.raw_series();
    assert!(raw.len() > 60);
    let xs: Vec<f64> = raw.iter().map(|(x, _)| *x).collect();
    let ys: Vec<f64> = raw.iter().map(|(_, y)| *y).collect();

    let savgol = SavGol::new(101, 3).expect("valid").smooth(&ys).expect("ok");
    let boxcar = smoothing::moving_average(&ys, 101).expect("ok");
    let median = smoothing::median_filter(&ys, 101).expect("ok");

    // Normalize each smoothed series at its ~300 ms point and compute the
    // error against the planted truth over 400..1200 ms.
    let idx300 = xs.iter().position(|&x| x >= 300.0).expect("covers 300ms");
    let mae = |s: &[f64]| -> f64 {
        let refv = s[idx300];
        let mut err = 0.0;
        let mut n = 0;
        for (i, &x) in xs.iter().enumerate() {
            if (400.0..=1200.0).contains(&x) {
                let planted = truth.normalized_preference(
                    ActionType::SelectMail,
                    UserClass::Business,
                    x,
                    300.0,
                );
                err += (s[i] / refv - planted).abs();
                n += 1;
            }
        }
        err / n as f64
    };
    let e_savgol = mae(&savgol);
    let e_boxcar = mae(&boxcar);
    let e_median = mae(&median);
    assert!(
        e_savgol <= e_boxcar + 0.01,
        "savgol {e_savgol:.4} vs boxcar {e_boxcar:.4}"
    );
    assert!(
        e_savgol <= e_median + 0.01,
        "savgol {e_savgol:.4} vs median {e_median:.4}"
    );
    // And it must actually be a good fit in absolute terms.
    assert!(
        e_savgol < 0.12,
        "savgol MAE vs planted truth = {e_savgol:.4}"
    );
}
