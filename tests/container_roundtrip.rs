//! Round-trip properties of the `.asc` binary columnar container.
//!
//! The container is the zero-parse ingest path: whatever survives a write
//! must map back bit-identical, column for column, through both the mmap
//! backing and the read-to-`Vec` fallback — and the mapped view must
//! analyze exactly like the parsed text path, down to the serialized JSON.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use autosens_core::report::{default_grid, PreferenceSummary};
use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_telemetry::container::{self, MappedLog};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::{SimTime, MS_PER_HOUR};
use autosens_telemetry::TelemetryLog;
use proptest::prelude::*;

static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique temp path per call so parallel proptest cases never collide.
fn tmp_asc(tag: &str) -> PathBuf {
    let n = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "autosens-roundtrip-{}-{tag}-{n}.asc",
        std::process::id()
    ))
}

fn arb_record() -> impl Strategy<Value = ActionRecord> {
    (
        -1_000_000_000i64..1_000_000_000,
        prop_oneof![
            Just(ActionType::SelectMail),
            Just(ActionType::SwitchFolder),
            Just(ActionType::Search),
            Just(ActionType::ComposeSend),
            Just(ActionType::Other),
        ],
        0.0f64..10_000.0,
        0u64..50,
        prop::bool::ANY,
        -12i64..=12,
        prop::bool::ANY,
    )
        .prop_map(
            |(t, action, latency, user, business, tz_h, ok)| ActionRecord {
                time: SimTime(t),
                action,
                latency_ms: latency,
                user: UserId(user),
                class: if business {
                    UserClass::Business
                } else {
                    UserClass::Consumer
                },
                tz_offset_ms: tz_h * MS_PER_HOUR,
                outcome: if ok { Outcome::Success } else { Outcome::Error },
            },
        )
}

/// Columns of `mapped` must be bit-identical to those of `log`.
fn assert_columns_equal(mapped: &MappedLog, log: &TelemetryLog) {
    let back = mapped.to_log().expect("validated container materializes");
    let (a, b) = (back.columns(), log.columns());
    assert_eq!(a.times(), b.times());
    assert_eq!(
        a.latencies()
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
        b.latencies()
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>()
    );
    assert_eq!(a.actions(), b.actions());
    assert_eq!(a.users(), b.users());
    assert_eq!(a.classes(), b.classes());
    assert_eq!(a.tz_offsets(), b.tz_offsets());
    assert_eq!(a.outcomes(), b.outcomes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_then_map_is_identity(records in prop::collection::vec(arb_record(), 0..150)) {
        let log = TelemetryLog::from_records(records).unwrap();
        let path = tmp_asc("identity");
        container::write_container_file(&log, &path, None).unwrap();

        let mapped = MappedLog::open(&path).unwrap();
        prop_assert_eq!(mapped.len(), log.len());
        prop_assert!(mapped.is_sorted());
        assert_columns_equal(&mapped, &log);

        // The fallback backing must agree with the mmap byte for byte.
        let copied = MappedLog::open_copied(&path).unwrap();
        prop_assert!(!copied.is_mapped());
        assert_columns_equal(&copied, &log);

        // Row access through the zero-copy view matches record access.
        let view = mapped.view();
        for i in 0..log.len() {
            prop_assert_eq!(view.get(i), log.get(i));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shard_blocks_partition_and_bound_rows(
        records in prop::collection::vec(arb_record(), 1..150),
        shard_hours in 1i64..100,
    ) {
        let shard_ms = shard_hours * MS_PER_HOUR;
        let log = TelemetryLog::from_records(records).unwrap();
        let path = tmp_asc("shards");
        container::write_container_file(&log, &path, Some(shard_ms)).unwrap();

        let mapped = MappedLog::open(&path).unwrap();
        let blocks = mapped.shard_blocks();
        prop_assert!(!blocks.is_empty());
        // Blocks partition [0, rows) contiguously and in order...
        prop_assert_eq!(blocks[0].row_lo, 0);
        prop_assert_eq!(blocks.last().unwrap().row_hi, log.len() as u64);
        for w in blocks.windows(2) {
            prop_assert_eq!(w[0].row_hi, w[1].row_lo);
        }
        // ...and each block's time envelope is tight for one shard bucket.
        let times = log.columns().times();
        for b in blocks {
            let rows = &times[b.row_lo as usize..b.row_hi as usize];
            prop_assert_eq!(rows.iter().min().copied(), Some(b.min_time_ms));
            prop_assert_eq!(rows.iter().max().copied(), Some(b.max_time_ms));
            let bucket = b.min_time_ms.div_euclid(shard_ms);
            for &t in rows {
                prop_assert_eq!(t.div_euclid(shard_ms), bucket);
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// The zero-parse view must produce the same analysis as the owned log —
/// down to the serialized JSON summary — serially and under threading.
#[test]
fn mapped_view_analysis_matches_owned_log() {
    use autosens_sim::{generate, Scenario, SimConfig};
    let (log, _) = generate(&SimConfig::scenario(Scenario::Smoke)).unwrap();
    let log = &log;
    let path = tmp_asc("analysis");
    container::write_container_file(log, &path, None).unwrap();
    let mapped = MappedLog::open(&path).unwrap();

    for threads in [1usize, 4] {
        let plan = AnalysisPlan::new(AutoSensConfig {
            threads,
            ..AutoSensConfig::default()
        });
        let from_log = plan
            .run(PlanInput::slice(log, &Slice::all()), RunOptions::default())
            .unwrap()
            .report;
        let from_map = plan
            .run(
                PlanInput::view(&mapped.view(), &Slice::all()),
                RunOptions::default(),
            )
            .unwrap()
            .report;
        let grid = default_grid();
        let a = PreferenceSummary::from_report("all", &from_log, &grid);
        let b = PreferenceSummary::from_report("all", &from_map, &grid);
        assert_eq!(
            serde_json::to_string_pretty(&a).unwrap(),
            serde_json::to_string_pretty(&b).unwrap(),
            "threads = {threads}"
        );
    }
    let _ = std::fs::remove_file(&path);
}
