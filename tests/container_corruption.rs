//! Torture tests for the `.asc` container reader: every way a file can rot
//! on disk — truncation, bad magic, wrong version, forged lengths, flipped
//! bits, invalid enum codes — must surface as a typed [`TelemetryError`],
//! never a panic. Directed cases patch specific fields (re-fixing the
//! checksums that would otherwise mask the fault); a property sweep then
//! mutates and truncates containers at arbitrary offsets.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use autosens_telemetry::container::{
    self, checksum64, MappedLog, CONTAINER_MAGIC, FOOTER_CHECKSUM_OFFSET, FOOTER_LEN,
    FOOTER_SECTIONS_OFFSET, HEADER_LEN, NUM_SECTIONS,
};
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::{SimTime, MS_PER_HOUR};
use autosens_telemetry::{TelemetryError, TelemetryLog};
use proptest::prelude::*;

static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_asc(tag: &str) -> PathBuf {
    let n = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "autosens-corrupt-{}-{tag}-{n}.asc",
        std::process::id()
    ))
}

/// A small, deterministic log with all enum values represented.
fn fixture_log(n: usize) -> TelemetryLog {
    let records: Vec<ActionRecord> = (0..n)
        .map(|i| ActionRecord {
            time: SimTime(i as i64 * 60_000),
            action: [
                ActionType::SelectMail,
                ActionType::SwitchFolder,
                ActionType::Search,
                ActionType::ComposeSend,
                ActionType::Other,
            ][i % 5],
            latency_ms: 50.0 + i as f64,
            user: UserId(i as u64 % 7),
            class: if i % 2 == 0 {
                UserClass::Business
            } else {
                UserClass::Consumer
            },
            tz_offset_ms: ((i as i64 % 25) - 12) * MS_PER_HOUR,
            outcome: if i % 9 == 0 {
                Outcome::Error
            } else {
                Outcome::Success
            },
        })
        .collect();
    TelemetryLog::from_records(records).unwrap()
}

/// Serialize a log to container bytes in memory.
fn container_bytes(log: &TelemetryLog, shard_ms: Option<i64>) -> Vec<u8> {
    let mut buf = Vec::new();
    container::write_container(log, &mut buf, shard_ms).unwrap();
    buf
}

/// Open container bytes through the real file-backed reader.
fn open_bytes(bytes: &[u8], tag: &str) -> Result<MappedLog, TelemetryError> {
    let path = tmp_asc(tag);
    std::fs::write(&path, bytes).unwrap();
    let result = MappedLog::open(&path);
    let _ = std::fs::remove_file(&path);
    result
}

/// Footer byte offset of the whole file.
fn footer_start(bytes: &[u8]) -> usize {
    bytes.len() - FOOTER_LEN
}

/// Recompute the footer self-checksum after patching footer fields, so the
/// patched *field* is what the reader trips on, not the checksum.
fn refix_footer(bytes: &mut [u8]) {
    let start = footer_start(bytes);
    let sum = checksum64(&bytes[start..start + FOOTER_CHECKSUM_OFFSET]);
    bytes[start + FOOTER_CHECKSUM_OFFSET..start + FOOTER_CHECKSUM_OFFSET + 8]
        .copy_from_slice(&sum.to_le_bytes());
}

/// Read section `i`'s (offset, len) from the footer.
fn section_geometry(bytes: &[u8], i: usize) -> (usize, usize) {
    let base = footer_start(bytes) + FOOTER_SECTIONS_OFFSET + i * 24;
    let off = u64::from_le_bytes(bytes[base..base + 8].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[base + 8..base + 16].try_into().unwrap());
    (off as usize, len as usize)
}

/// Recompute section `i`'s checksum after patching its payload, then re-fix
/// the footer checksum that covers the triple.
fn refix_section(bytes: &mut [u8], i: usize) {
    let (off, len) = section_geometry(bytes, i);
    let sum = checksum64(&bytes[off..off + len]);
    let base = footer_start(bytes) + FOOTER_SECTIONS_OFFSET + i * 24;
    bytes[base + 16..base + 24].copy_from_slice(&sum.to_le_bytes());
    refix_footer(bytes);
}

/// Every corruption must produce the typed container error, with a reason
/// that names the failure.
fn assert_corrupt(result: Result<MappedLog, TelemetryError>, needle: &str) {
    let err = result.expect_err("corruption must be rejected");
    assert!(
        matches!(err, TelemetryError::Container { .. }),
        "expected Container error, got {err:?}"
    );
    let msg = err.to_string();
    assert!(msg.contains("corrupt telemetry container"), "{msg}");
    assert!(msg.contains(needle), "missing {needle:?} in: {msg}");
}

#[test]
fn rejects_bad_magic() {
    let mut bytes = container_bytes(&fixture_log(16), None);
    bytes[0] ^= 0xFF;
    assert_corrupt(open_bytes(&bytes, "magic"), "bad magic");
}

#[test]
fn rejects_unsupported_version() {
    let mut bytes = container_bytes(&fixture_log(16), None);
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert_corrupt(
        open_bytes(&bytes, "version"),
        "unsupported container version",
    );
}

#[test]
fn rejects_unknown_flag_bits() {
    let mut bytes = container_bytes(&fixture_log(16), None);
    bytes[12] |= 0x80;
    assert_corrupt(open_bytes(&bytes, "flags"), "unknown flag bits");
}

#[test]
fn rejects_truncation_below_minimum() {
    let bytes = container_bytes(&fixture_log(16), None);
    for keep in [0, 1, 8, HEADER_LEN, HEADER_LEN + FOOTER_LEN - 1] {
        assert_corrupt(open_bytes(&bytes[..keep], "short"), "truncated");
    }
}

#[test]
fn rejects_clipped_footer() {
    let bytes = container_bytes(&fixture_log(16), None);
    // Any tail clip leaves the terminal magic short or misplaced.
    for cut in [1, 7, 8, FOOTER_LEN - 1, FOOTER_LEN] {
        let clipped = &bytes[..bytes.len() - cut];
        assert_corrupt(open_bytes(clipped, "clip"), "footer magic missing");
    }
}

#[test]
fn rejects_flipped_footer_field() {
    let mut bytes = container_bytes(&fixture_log(16), None);
    // Forge the row count without re-fixing the footer checksum.
    let start = footer_start(&bytes);
    bytes[start] ^= 0x01;
    assert_corrupt(open_bytes(&bytes, "footer-sum"), "footer checksum mismatch");
}

#[test]
fn rejects_section_length_mismatch() {
    // Claim one row more than the time section holds (checksum re-fixed, so
    // the geometry check itself must catch it).
    let mut bytes = container_bytes(&fixture_log(16), None);
    let start = footer_start(&bytes);
    let base = start + FOOTER_SECTIONS_OFFSET + 8; // time section length field
    let len = u64::from_le_bytes(bytes[base..base + 8].try_into().unwrap());
    bytes[base..base + 8].copy_from_slice(&(len + 8).to_le_bytes());
    refix_footer(&mut bytes);
    assert_corrupt(open_bytes(&bytes, "length"), "length mismatch");
}

#[test]
fn rejects_section_past_data_area() {
    // Point the last column section beyond the end of the data area.
    let mut bytes = container_bytes(&fixture_log(16), None);
    let start = footer_start(&bytes);
    let base = start + FOOTER_SECTIONS_OFFSET + (NUM_SECTIONS - 1) * 24;
    let huge = (bytes.len() as u64).next_multiple_of(8);
    bytes[base..base + 8].copy_from_slice(&huge.to_le_bytes());
    refix_footer(&mut bytes);
    assert_corrupt(open_bytes(&bytes, "bounds"), "runs past the data area");
}

#[test]
fn rejects_flipped_payload_byte() {
    // A single flipped bit in each column section must trip that section's
    // checksum (the word-wise FNV mixes every byte bijectively).
    let bytes = container_bytes(&fixture_log(16), None);
    for i in 0..NUM_SECTIONS {
        let (off, len) = section_geometry(&bytes, i);
        let mut mutated = bytes.clone();
        mutated[off + len / 2] ^= 0x10;
        assert_corrupt(open_bytes(&mutated, "payload"), "checksum mismatch");
    }
}

#[test]
fn rejects_out_of_range_enum_codes() {
    // Patch a valid code to an invalid one and re-fix every checksum: only
    // the semantic range check stands between the code and `from_code`'s
    // panic path.
    for (section, needle, bad) in [
        (2usize, "action column", 5u8),
        (4, "class column", 2),
        (6, "outcome column", 0xFF),
    ] {
        let mut bytes = container_bytes(&fixture_log(16), None);
        let (off, _) = section_geometry(&bytes, section);
        bytes[off + 3] = bad;
        refix_section(&mut bytes, section);
        assert_corrupt(open_bytes(&bytes, "enum"), needle);
    }
}

#[test]
fn rejects_non_finite_and_negative_latency() {
    for value in [f64::NAN, f64::INFINITY, -1.0] {
        let mut bytes = container_bytes(&fixture_log(16), None);
        let (off, _) = section_geometry(&bytes, 1);
        bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
        refix_section(&mut bytes, 1);
        assert_corrupt(open_bytes(&bytes, "latency"), "latency column");
    }
}

#[test]
fn rejects_timezone_outside_fourteen_hours() {
    let mut bytes = container_bytes(&fixture_log(16), None);
    let (off, _) = section_geometry(&bytes, 5);
    bytes[off..off + 8].copy_from_slice(&(15 * MS_PER_HOUR).to_le_bytes());
    refix_section(&mut bytes, 5);
    assert_corrupt(open_bytes(&bytes, "tz"), "outside +/-14h");
}

#[test]
fn rejects_sorted_flag_lie() {
    // Break the time order while the header still claims sortedness.
    let mut bytes = container_bytes(&fixture_log(16), None);
    let (off, _) = section_geometry(&bytes, 0);
    bytes[off + 8..off + 16].copy_from_slice(&(-1i64).to_le_bytes());
    refix_section(&mut bytes, 0);
    assert_corrupt(open_bytes(&bytes, "order"), "decreases at row");
}

#[test]
fn rejects_overlapping_shard_blocks() {
    let mut bytes = container_bytes(&fixture_log(16), Some(5 * 60_000));
    let (off, len) = section_geometry(&bytes, NUM_SECTIONS);
    assert!(len >= 64, "fixture must produce at least two shard blocks");
    // Rewind the second block's row_lo into the first block's range.
    bytes[off + 32..off + 40].copy_from_slice(&0u64.to_le_bytes());
    refix_section(&mut bytes, NUM_SECTIONS);
    assert_corrupt(open_bytes(&bytes, "shard"), "out of order or out of range");
}

#[test]
fn empty_file_and_foreign_file_are_not_containers() {
    assert_corrupt(open_bytes(b"", "empty"), "truncated");
    // Shorter than the structural minimum: rejected before magic is read.
    assert_corrupt(
        open_bytes(b"time_ms,action,latency_ms\n", "csv-short"),
        "truncated",
    );
    // Big enough to pass the size check: fails on magic instead.
    let csv = b"time_ms,action,latency_ms,user,class,tz_offset_ms,outcome\n".repeat(8);
    assert_corrupt(open_bytes(&csv, "csv-long"), "bad magic");
    let zeros = vec![0u8; HEADER_LEN + FOOTER_LEN];
    assert_corrupt(open_bytes(&zeros, "zeros"), "bad magic");
    assert!(!container::is_container_bytes(b"time_ms,"));
    assert!(container::is_container_bytes(&CONTAINER_MAGIC));
}

fn arb_record() -> impl Strategy<Value = ActionRecord> {
    (
        -1_000_000i64..1_000_000,
        0u8..5,
        0.0f64..1_000.0,
        0u64..10,
        prop::bool::ANY,
        -12i64..=12,
        prop::bool::ANY,
    )
        .prop_map(|(t, a, latency, user, business, tz_h, ok)| ActionRecord {
            time: SimTime(t),
            action: ActionType::from_code(a),
            latency_ms: latency,
            user: UserId(user),
            class: if business {
                UserClass::Business
            } else {
                UserClass::Consumer
            },
            tz_offset_ms: tz_h * MS_PER_HOUR,
            outcome: if ok { Outcome::Success } else { Outcome::Error },
        })
}

// The blanket property behind all the directed cases: an arbitrary byte
// mutation either fails with a typed error or leaves every column intact
// (padding and dead header bits are not semantically covered) — and it
// NEVER panics.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn mutated_containers_never_panic_or_corrupt(
        records in prop::collection::vec(arb_record(), 1..60),
        with_shards in prop::bool::ANY,
        offset_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let log = TelemetryLog::from_records(records).unwrap();
        let shard_ms = with_shards.then_some(10 * 60_000);
        let mut bytes = container_bytes(&log, shard_ms);
        let offset = (offset_seed % bytes.len() as u64) as usize;
        bytes[offset] ^= xor;

        match open_bytes(&bytes, "prop-mutate") {
            Err(TelemetryError::Container { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error type: {other:?}"),
            Ok(mapped) => {
                // The flip landed in padding or a non-semantic bit: the
                // columns must still read back bit-identical.
                let back = mapped.to_log().unwrap();
                prop_assert_eq!(back.columns().times(), log.columns().times());
                let bits = |l: &[f64]| l.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(
                    bits(back.columns().latencies()),
                    bits(log.columns().latencies())
                );
                prop_assert_eq!(back.columns().actions(), log.columns().actions());
                prop_assert_eq!(back.columns().users(), log.columns().users());
                prop_assert_eq!(back.columns().classes(), log.columns().classes());
                prop_assert_eq!(back.columns().tz_offsets(), log.columns().tz_offsets());
                prop_assert_eq!(back.columns().outcomes(), log.columns().outcomes());
            }
        }
    }

    #[test]
    fn truncated_containers_always_error(
        records in prop::collection::vec(arb_record(), 1..60),
        cut_seed in any::<u64>(),
    ) {
        let log = TelemetryLog::from_records(records).unwrap();
        let bytes = container_bytes(&log, None);
        // Cut at least one byte, possibly everything.
        let cut = 1 + (cut_seed % bytes.len() as u64) as usize;
        let clipped = &bytes[..bytes.len() - cut];
        match open_bytes(clipped, "prop-trunc") {
            Err(TelemetryError::Container { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error type: {other:?}"),
            Ok(_) => prop_assert!(false, "truncated container must not open"),
        }
    }
}
