//! The time-confounder correction (§2.4.1): without α-normalization the
//! diurnal coupling of activity and latency distorts — and can invert —
//! the inferred preference; with it, the planted preference is recovered.

mod common;

use autosens_core::AutoSensConfig;
use autosens_core::{AnalysisPlan, PlanInput, RunOptions};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};
use autosens_telemetry::time::DayPeriod;

fn slice() -> Slice {
    Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business)
}

#[test]
fn alpha_correction_removes_the_inversion() {
    let (log, _) = common::data();
    let corrected = common::run_slice(log, &slice()).expect("fits");
    let uncorrected = AnalysisPlan::new(AutoSensConfig {
        alpha_correction: false,
        ..AutoSensConfig::default()
    })
    .run(PlanInput::slice(log, &slice()), RunOptions::default())
    .expect("fits")
    .report;

    let probe = 1000.0;
    let with_alpha = corrected.preference.at(probe).expect("supported");
    let without_alpha = uncorrected.preference.at(probe).expect("supported");
    // Uncorrected: busy hours are both active and slow, inflating apparent
    // activity at high latency — the naive estimate sits far above the
    // corrected one (and typically above 1, the Table 1 inversion).
    assert!(
        without_alpha > with_alpha + 0.15,
        "uncorrected {without_alpha:.3} should exceed corrected {with_alpha:.3}"
    );
    assert!(
        without_alpha > 0.95,
        "naive estimate should (wrongly) suggest no sensitivity, got {without_alpha:.3}"
    );
    assert!(
        with_alpha < 0.85,
        "corrected estimate should show real sensitivity, got {with_alpha:.3}"
    );
}

#[test]
fn alpha_by_period_matches_activity_profile() {
    let (log, truth) = common::data();
    let est = common::engine()
        .alpha_by_period(log, &slice())
        .expect("fits");
    // Reference period normalized to 1.
    let morning = est.groups[0].alpha.expect("morning usable");
    assert!((morning - 1.0).abs() < 1e-9);
    // Night well below day, and within 2x of the planted profile.
    let night = est.groups[3].alpha.expect("night usable");
    let planted = truth.true_alpha(UserClass::Business, DayPeriod::Night2to8);
    assert!(night < 0.5, "night alpha {night:.3}");
    assert!(
        night / planted < 2.0 && planted / night < 2.0,
        "night alpha {night:.3} vs planted {planted:.3}"
    );
    // Afternoon between night and morning.
    let afternoon = est.groups[1].alpha.expect("afternoon usable");
    assert!(night < afternoon && afternoon < 1.3);
}

#[test]
fn alpha_is_roughly_flat_across_latency_bins() {
    let (log, _) = common::data();
    let est = common::engine()
        .alpha_by_period(log, &slice())
        .expect("fits");
    // The paper's justification for averaging alpha over bins (Fig 8): the
    // per-bin alphas of the afternoon period (the best-supported non-
    // reference group) vary modestly around their mean.
    let per_bin = &est.groups[1].per_bin;
    assert!(
        per_bin.len() >= 10,
        "need supported bins, got {}",
        per_bin.len()
    );
    let vals: Vec<f64> = per_bin.iter().map(|(_, a)| *a).collect();
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let sd = (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64).sqrt();
    assert!(
        sd / mean < 0.45,
        "per-bin alpha CV = {:.3} (mean {mean:.3})",
        sd / mean
    );
}

#[test]
fn more_reference_slots_stabilize_alpha() {
    // With a single reference slot the alpha estimate inherits that slot's
    // noise; averaging over several references must not blow up, and both
    // configurations should land in the same neighbourhood.
    let (log, _) = common::data();
    let one = AnalysisPlan::new(AutoSensConfig {
        alpha_references: 1,
        ..AutoSensConfig::default()
    })
    .run(PlanInput::slice(log, &slice()), RunOptions::default())
    .expect("fits")
    .report;
    let many = AnalysisPlan::new(AutoSensConfig {
        alpha_references: 6,
        ..AutoSensConfig::default()
    })
    .run(PlanInput::slice(log, &slice()), RunOptions::default())
    .expect("fits")
    .report;
    let a = one.preference.at(900.0).expect("supported");
    let b = many.preference.at(900.0).expect("supported");
    assert!((a - b).abs() < 0.15, "1-ref {a:.3} vs 6-ref {b:.3}");
}
