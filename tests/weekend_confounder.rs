//! The day-of-week confounder (named in the paper's §2.4.1): when weekends
//! are systematically faster (load drops) *and* activity differs by day
//! kind, hour-of-day slots alone cannot separate the time effect from the
//! latency effect. The weekday/weekend-aware grouping
//! (`AutoSensConfig::weekday_weekend_slots`) corrects it.

use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_sim::config::{Scenario, SimConfig};
use autosens_sim::generate;
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};

/// Validation scenario with weekends running at e^-0.6 ≈ 0.55x load.
fn weekend_coupled_config() -> SimConfig {
    let mut cfg = SimConfig::scenario(Scenario::Default);
    cfg.n_business = 300;
    cfg.n_consumer = 300;
    cfg.congestion.weekend_load_log = -0.6;
    cfg
}

fn mae_vs_truth(
    log: &autosens_telemetry::TelemetryLog,
    truth: &autosens_sim::GroundTruth,
    weekday_weekend_slots: bool,
) -> f64 {
    let cfg = AutoSensConfig {
        weekday_weekend_slots,
        ..AutoSensConfig::default()
    };
    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);
    let report = AnalysisPlan::new(cfg)
        .run(PlanInput::slice(log, &slice), RunOptions::default())
        .expect("fits")
        .report;
    let mut err = 0.0;
    let mut n = 0;
    for l in (400..=1200).step_by(100) {
        if let Some(m) = report.preference.at(l as f64) {
            let t = truth.normalized_preference(
                ActionType::SelectMail,
                UserClass::Business,
                l as f64,
                300.0,
            );
            err += (m - t).abs();
            n += 1;
        }
    }
    assert!(n >= 7, "too few supported probes: {n}");
    err / n as f64
}

#[test]
fn day_kind_slots_correct_the_weekend_confounder() {
    // Business users: weekends are fast (low load) AND quiet (activity
    // x0.25), so hour-of-day slots see fast periods with low activity and
    // wash out — or invert — the preference. Splitting slots by day kind
    // removes the coupling.
    let (log, truth) = generate(&weekend_coupled_config()).expect("valid");
    let mae_hour_slots = mae_vs_truth(&log, &truth, false);
    let mae_day_kind = mae_vs_truth(&log, &truth, true);
    assert!(
        mae_day_kind < 0.08,
        "day-kind grouping should recover the truth, MAE = {mae_day_kind:.4}"
    );
    assert!(
        mae_hour_slots > 2.0 * mae_day_kind,
        "hour slots alone should be visibly confounded: {mae_hour_slots:.4} vs {mae_day_kind:.4}"
    );
}

#[test]
fn day_kind_slots_remain_correct_without_weekend_coupling() {
    // With no weekend load shift (the default), the finer grouping still
    // recovers the truth — but pays a precision cost: business weekend
    // slots are sparse (activity x0.25), so their alphas are noisy and the
    // curve wobbles more than with the paper's 24 slots. That tradeoff is
    // why the day-kind grouping is opt-in.
    let mut cfg = weekend_coupled_config();
    cfg.congestion.weekend_load_log = 0.0;
    let (log, truth) = generate(&cfg).expect("valid");
    let mae_hour_slots = mae_vs_truth(&log, &truth, false);
    let mae_day_kind = mae_vs_truth(&log, &truth, true);
    assert!(mae_hour_slots < 0.08, "baseline MAE {mae_hour_slots:.4}");
    assert!(
        mae_day_kind < 0.18,
        "day-kind grouping should stay in the truth's neighbourhood, MAE {mae_day_kind:.4}"
    );
}
