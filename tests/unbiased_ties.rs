//! Property test for the unbiased estimator's tie-breaking (§2.2).
//!
//! When several samples are exactly equidistant from a drawn instant, the
//! paper's estimator picks among them uniformly at random. The sharpest
//! probe: a log whose records all share one timestamp, so *every* draw is
//! a full k-way tie. Each record's latency lands in its own histogram
//! bin, so the per-bin counts expose the tie-break distribution directly
//! — uniform within binomial noise, for every seed, through the serial
//! and the chunked (data-parallel) estimator alike.

use autosens_core::unbiased::{unbiased_histogram, unbiased_histogram_par};
use autosens_stats::binning::{Binner, OutOfRange};
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::SimTime;
use autosens_telemetry::TelemetryLog;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of exactly-tied records (one per bin).
const K: usize = 6;

/// Draws per estimation; every one is a K-way tie.
const DRAWS: usize = 6_000;

/// A log of K records sharing one timestamp, latencies in distinct bins.
fn tied_log() -> (TelemetryLog, Binner) {
    let records: Vec<ActionRecord> = (0..K)
        .map(|i| ActionRecord {
            time: SimTime(1_000_000),
            action: ActionType::SelectMail,
            latency_ms: 50.0 + 100.0 * i as f64,
            user: UserId(i as u64),
            class: UserClass::Business,
            tz_offset_ms: 0,
            outcome: Outcome::Success,
        })
        .collect();
    let log = TelemetryLog::from_records(records).expect("tied records are valid");
    let binner = Binner::new(0.0, 600.0, 100.0, OutOfRange::Clamp).expect("binner");
    (log, binner)
}

/// Binomial uniformity check: every bin within `sigmas` standard
/// deviations of the uniform expectation.
fn assert_uniform(counts: &[f64], draws: usize, sigmas: f64, context: &str) {
    assert_eq!(counts.len(), K, "{context}: unexpected bin count");
    let total: f64 = counts.iter().sum();
    assert_eq!(total as usize, draws, "{context}: draws went missing");
    let p = 1.0 / K as f64;
    let mean = draws as f64 * p;
    let sigma = (draws as f64 * p * (1.0 - p)).sqrt();
    for (i, &c) in counts.iter().enumerate() {
        let dev = (c - mean).abs();
        assert!(
            dev <= sigmas * sigma,
            "{context}: bin {i} count {c} deviates {dev:.1} from {mean:.1} \
             (allowed {:.1} = {sigmas}σ)",
            sigmas * sigma
        );
    }
}

proptest! {
    // 32 seeds is plenty: each case already aggregates 6k tie-breaks, and
    // the 5σ bound makes a false alarm astronomically unlikely while any
    // systematic bias (first-of-run, index-ordered, modulo-skewed) fails
    // immediately.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn equidistant_ties_break_uniformly_serial(seed in any::<u64>()) {
        let (log, binner) = tied_log();
        let mut rng = StdRng::seed_from_u64(seed);
        let h = unbiased_histogram(&log.view(), &binner, DRAWS, &mut rng).expect("estimate");
        assert_uniform(h.counts(), DRAWS, 5.0, &format!("serial seed {seed:#x}"));
    }

    #[test]
    fn equidistant_ties_break_uniformly_parallel(seed in any::<u64>()) {
        let (log, binner) = tied_log();
        for threads in [1usize, 4] {
            let mut rng = StdRng::seed_from_u64(seed);
            let (h, _) = unbiased_histogram_par(&log.view(), &binner, DRAWS, threads, &mut rng)
                .expect("estimate");
            assert_uniform(
                h.counts(),
                DRAWS,
                5.0,
                &format!("parallel threads {threads} seed {seed:#x}"),
            );
        }
    }
}

#[test]
fn tie_breaking_is_deterministic_per_seed() {
    // Uniform in distribution, but still reproducible: the same seed must
    // give bit-identical counts run-to-run (and across thread counts for
    // the chunked variant).
    let (log, binner) = tied_log();
    let runs: Vec<Vec<f64>> = (0..2)
        .map(|_| {
            let mut rng = StdRng::seed_from_u64(0x71E5);
            unbiased_histogram(&log.view(), &binner, DRAWS, &mut rng)
                .expect("estimate")
                .counts()
                .to_vec()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);

    let par: Vec<Vec<f64>> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let mut rng = StdRng::seed_from_u64(0x71E5);
            unbiased_histogram_par(&log.view(), &binner, DRAWS, threads, &mut rng)
                .expect("estimate")
                .0
                .counts()
                .to_vec()
        })
        .collect();
    assert_eq!(par[0], par[1]);
    assert_eq!(par[1], par[2]);
}
