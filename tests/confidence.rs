//! Bootstrap confidence bands on simulated telemetry: the band must bracket
//! the point estimate, mostly cover the planted truth, and behave sanely.

mod common;

use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionType, UserClass};

fn slice() -> Slice {
    Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business)
}

#[test]
fn band_brackets_point_and_mostly_covers_truth() {
    let (log, truth) = common::data();
    let (report, ci) = common::run_slice_with_ci(log, &slice(), 40, 0.95).expect("fits");
    assert!(ci.replicates >= 20);

    let mut covered = 0;
    let mut total = 0;
    for l in (400..=1200).step_by(100) {
        let l = l as f64;
        let point = report.preference.at(l).expect("supported");
        let (lo, hi) = ci.band_at(l).expect("band exists");
        assert!(lo <= hi, "@{l}: [{lo}, {hi}]");
        assert!(
            point >= lo - 0.03 && point <= hi + 0.03,
            "@{l}: point {point:.3} vs band [{lo:.3}, {hi:.3}]"
        );
        // Bands should be informative, not vacuous.
        assert!(hi - lo < 0.5, "@{l}: band too wide [{lo:.3}, {hi:.3}]");

        let planted =
            truth.normalized_preference(ActionType::SelectMail, UserClass::Business, l, 300.0);
        total += 1;
        // Allow a small tolerance around the band for the dilution bias
        // (the measured curve is a slightly shrunk version of the truth —
        // see DESIGN.md §8; the allowance also absorbs the draw-schedule
        // noise of the deterministic per-chunk RNG streams).
        if planted >= lo - 0.065 && planted <= hi + 0.065 {
            covered += 1;
        }
    }
    assert!(
        covered * 10 >= total * 7,
        "truth coverage too low: {covered}/{total}"
    );
}

#[test]
fn ci_is_deterministic_for_a_seed() {
    let (log, _) = common::data();
    let (_, a) = common::run_slice_with_ci(log, &slice(), 25, 0.9).expect("fits");
    let (_, b) = common::run_slice_with_ci(log, &slice(), 25, 0.9).expect("fits");
    assert_eq!(a.band_series().len(), b.band_series().len());
    for ((x1, l1, h1), (x2, l2, h2)) in a.band_series().iter().zip(b.band_series().iter()) {
        assert_eq!(x1, x2);
        assert_eq!(l1, l2);
        assert_eq!(h1, h2);
    }
}
