//! Property test for the columnar view layer (the PR-5 refactor's core
//! invariant): for every log and every `Slice`, the zero-copy
//! [`Slice::select`] view is index-for-index identical to the legacy
//! row-materializing semantics of [`Slice::iter`] — same rows, same
//! order, same field values at the bit level — and the data-parallel
//! [`Slice::select_par`] builds the exact same selection vector at every
//! thread count.

use std::collections::HashSet;

use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::{DayPeriod, Month, SimTime, MS_PER_HOUR};
use autosens_telemetry::TelemetryLog;
use proptest::prelude::*;

const ACTIONS: [ActionType; 5] = [
    ActionType::SelectMail,
    ActionType::SwitchFolder,
    ActionType::Search,
    ActionType::ComposeSend,
    ActionType::Other,
];

fn arb_record() -> impl Strategy<Value = ActionRecord> {
    (
        0i64..120 * 24 * 3_600_000, // ~4 months of timestamps
        0usize..ACTIONS.len(),      // every action code
        prop_oneof![Just(0.0f64), 1.0..5_000.0f64],
        0u64..8, // few users => dense user slices
        any::<bool>(),
        -3i64..=3, // whole-hour timezone offsets
        0u32..10,  // ~10% errors
    )
        .prop_map(|(t, a, latency, user, business, tz_h, err)| ActionRecord {
            time: SimTime(t),
            action: ACTIONS[a],
            latency_ms: latency,
            user: UserId(user),
            class: if business {
                UserClass::Business
            } else {
                UserClass::Consumer
            },
            tz_offset_ms: tz_h * MS_PER_HOUR,
            outcome: if err == 0 {
                Outcome::Error
            } else {
                Outcome::Success
            },
        })
}

/// A random conjunction of every predicate the pipeline composes.
#[allow(clippy::type_complexity)]
fn arb_slice() -> impl Strategy<Value = Slice> {
    (
        proptest::option::of(0usize..ACTIONS.len()),
        proptest::option::of(any::<bool>()),
        proptest::option::of(0usize..4),
        proptest::option::of(0usize..4),
        proptest::option::of(proptest::collection::hash_set(0u64..8, 0..4)),
        proptest::option::of(-3i64..=3),
        any::<bool>(),
    )
        .prop_map(|(action, class, period, month, users, tz, succ)| {
            let periods = [
                DayPeriod::Night2to8,
                DayPeriod::Morning8to14,
                DayPeriod::Afternoon14to20,
                DayPeriod::Evening20to2,
            ];
            let months = [Month::Jan, Month::Feb, Month::Mar, Month::Apr];
            let mut s = Slice::all();
            if let Some(a) = action {
                s = s.action(ACTIONS[a]);
            }
            if let Some(b) = class {
                s = s.class(if b {
                    UserClass::Business
                } else {
                    UserClass::Consumer
                });
            }
            if let Some(p) = period {
                s = s.period(periods[p]);
            }
            if let Some(m) = month {
                s = s.month(months[m]);
            }
            if let Some(u) = users {
                s = s.users(u.into_iter().map(UserId).collect::<HashSet<_>>());
            }
            if let Some(h) = tz {
                s = s.tz_offset_hours(h);
            }
            if succ {
                s = s.successes();
            }
            s
        })
}

fn bits(r: &ActionRecord) -> (i64, u8, u64, u64, u8, i64, u8) {
    (
        r.time.millis(),
        r.action.code(),
        r.latency_ms.to_bits(),
        r.user.0,
        r.class.code(),
        r.tz_offset_ms,
        r.outcome.code(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn select_view_is_index_identical_to_legacy_iter(
        records in proptest::collection::vec(arb_record(), 0..200),
        slice in arb_slice(),
    ) {
        let log = TelemetryLog::from_records(records).expect("generated records are valid");

        // Legacy semantics: scan the rows in storage order, keep matches.
        let expected: Vec<(usize, ActionRecord)> = (0..log.len())
            .map(|i| (i, log.get(i)))
            .filter(|(_, r)| slice.matches(r))
            .collect();
        let via_iter: Vec<ActionRecord> = slice.iter(&log).collect();
        prop_assert_eq!(via_iter.len(), expected.len());

        // The zero-copy view: same length, and index-for-index the same
        // storage row, the same record, and the same per-column values.
        let view = slice.select(&log);
        prop_assert_eq!(view.len(), expected.len());
        for (k, (row, rec)) in expected.iter().enumerate() {
            prop_assert_eq!(view.row(k), *row, "selection index {} diverged", k);
            prop_assert_eq!(bits(&view.get(k)), bits(rec));
            prop_assert_eq!(bits(&via_iter[k]), bits(rec));
            prop_assert_eq!(view.time_at(k), rec.time.millis());
            prop_assert_eq!(view.latency_at(k).to_bits(), rec.latency_ms.to_bits());
            prop_assert_eq!(view.action_at(k), rec.action.code());
            prop_assert_eq!(view.user_at(k), rec.user.0);
            prop_assert_eq!(view.class_at(k), rec.class.code());
            prop_assert_eq!(view.tz_offset_at(k), rec.tz_offset_ms);
            prop_assert_eq!(view.outcome_at(k), rec.outcome.code());
        }

        // Materializing the view is the legacy `apply`.
        let materialized = view.materialize();
        prop_assert_eq!(
            materialized.to_records().iter().map(bits).collect::<Vec<_>>(),
            expected.iter().map(|(_, r)| bits(r)).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            slice.apply(&log).to_records().iter().map(bits).collect::<Vec<_>>(),
            materialized.to_records().iter().map(bits).collect::<Vec<_>>()
        );

        // The chunked selection builds the identical view at every thread
        // count — the determinism contract the whole pipeline leans on.
        for threads in [1usize, 2, 4, 8] {
            let (par, report) = slice.select_par(&log, threads).expect("select_par");
            prop_assert_eq!(report.n_items, log.len());
            prop_assert_eq!(par.len(), view.len(), "threads={}", threads);
            for k in 0..par.len() {
                prop_assert_eq!(par.row(k), view.row(k), "threads={} k={}", threads, k);
            }
        }
    }
}
