//! Determinism suite for the chunked execution engine.
//!
//! The scheduler in `autosens-exec` promises that worker count is purely a
//! throughput knob: chunk boundaries depend only on item count, partials
//! merge in chunk order, and every randomized job derives per-chunk RNG
//! streams from one sequentially drawn base seed. These properties make the
//! whole analysis a pure function of `(log, config minus threads)`. The
//! tests here pin that contract at the `AnalysisReport` level: for random
//! telemetry logs, runs at 1, 2, 4, and 8 threads must be *bit*-identical —
//! same preference curve, same degradations, same α table, same pooled
//! histograms, and the same bootstrap confidence band from the same seed.

use autosens_core::pipeline::AnalysisReport;
use autosens_core::{AnalysisPlan, AutoSensConfig, PlanInput, RunOptions};
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::SimTime;
use autosens_telemetry::TelemetryLog;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Thread counts the contract is checked over (1 is the serial reference).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A random but *valid* telemetry log: sorted timestamps spanning about two
/// weeks, latencies across the analyzable range, mixed actions, classes,
/// timezones, and outcomes. Everything derives from `seed`.
fn random_log(seed: u64, n: usize) -> TelemetryLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0i64;
    let records: Vec<ActionRecord> = (0..n)
        .map(|_| {
            t += rng.gen_range(1_000i64..80_000);
            let actions = ActionType::analyzed();
            ActionRecord {
                time: SimTime(t),
                action: actions[rng.gen_range(0..actions.len())],
                latency_ms: rng.gen_range(50.0..1500.0),
                user: UserId(rng.gen_range(0..500)),
                class: if rng.gen_range(0..2) == 0 {
                    UserClass::Business
                } else {
                    UserClass::Consumer
                },
                tz_offset_ms: rng.gen_range(-5i64..=5) * 3_600_000,
                outcome: if rng.gen_range(0..50) == 0 {
                    Outcome::Error
                } else {
                    Outcome::Success
                },
            }
        })
        .collect();
    TelemetryLog::from_records(records).expect("generated records are valid")
}

fn config(threads: usize) -> AutoSensConfig {
    AutoSensConfig {
        threads,
        ..AutoSensConfig::default()
    }
}

/// One flattened α-table group: label, action count, α bits, per-bin bits.
type AlphaRow = (String, u64, Option<u64>, Vec<(u64, u64)>);

/// Bitwise equality for an f64 series (NaN-free by construction).
fn bits(series: &[(f64, f64)]) -> Vec<(u64, u64)> {
    series
        .iter()
        .map(|&(x, y)| (x.to_bits(), y.to_bits()))
        .collect()
}

/// Assert two reports are bit-identical in every analyst-visible field.
fn assert_reports_identical(a: &AnalysisReport, b: &AnalysisReport, what: &str) {
    assert_eq!(
        bits(&a.preference.series()),
        bits(&b.preference.series()),
        "{what}: normalized preference diverged"
    );
    assert_eq!(
        bits(&a.preference.raw_series()),
        bits(&b.preference.raw_series()),
        "{what}: raw preference diverged"
    );
    assert_eq!(a.n_actions, b.n_actions, "{what}: action count diverged");
    assert_eq!(
        a.degradations, b.degradations,
        "{what}: degradations diverged"
    );
    let counts = |h: &autosens_stats::histogram::Histogram| -> Vec<u64> {
        h.counts().iter().map(|c| c.to_bits()).collect()
    };
    assert_eq!(
        counts(&a.biased),
        counts(&b.biased),
        "{what}: biased histogram diverged"
    );
    assert_eq!(
        counts(&a.unbiased),
        counts(&b.unbiased),
        "{what}: unbiased histogram diverged"
    );
    let alpha_table = |r: &AnalysisReport| -> Vec<AlphaRow> {
        r.alpha
            .as_ref()
            .map(|est| {
                est.groups
                    .iter()
                    .map(|g| {
                        (
                            g.label.clone(),
                            g.n_actions,
                            g.alpha.map(f64::to_bits),
                            bits(&g.per_bin),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    assert_eq!(
        alpha_table(a),
        alpha_table(b),
        "{what}: alpha table diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn analysis_is_bit_identical_for_any_thread_count(seed in 0u64..1u64 << 48) {
        let log = random_log(seed, 30_000);
        let reference = AnalysisPlan::new(config(1))
            .run(PlanInput::log(&log), RunOptions::default())
            .expect("reference analysis succeeds")
            .report;
        for threads in THREADS {
            let report = AnalysisPlan::new(config(threads))
                .run(PlanInput::log(&log), RunOptions::default())
                .expect("parallel analysis succeeds")
                .report;
            assert_reports_identical(&reference, &report, &format!("threads={threads}"));
        }
    }

    #[test]
    fn bootstrap_ci_is_identical_for_any_thread_count(seed in 0u64..1u64 << 48) {
        let log = random_log(seed, 25_000);
        let slice = Slice::all();
        let ref_out = AnalysisPlan::new(config(1))
            .run(PlanInput::slice(&log, &slice), RunOptions::with_ci(30, 0.95))
            .expect("reference analysis succeeds");
        let (ref_report, ref_ci) = (ref_out.report, ref_out.ci.expect("ci requested"));
        let ref_band: Vec<(u64, u64, u64)> = ref_ci
            .band_series()
            .iter()
            .map(|&(x, lo, hi)| (x.to_bits(), lo.to_bits(), hi.to_bits()))
            .collect();
        for threads in THREADS {
            let out = AnalysisPlan::new(config(threads))
                .run(PlanInput::slice(&log, &slice), RunOptions::with_ci(30, 0.95))
                .expect("parallel analysis succeeds");
            let (report, ci) = (out.report, out.ci.expect("ci requested"));
            assert_reports_identical(&ref_report, &report, &format!("threads={threads}"));
            let band: Vec<(u64, u64, u64)> = ci
                .band_series()
                .iter()
                .map(|&(x, lo, hi)| (x.to_bits(), lo.to_bits(), hi.to_bits()))
                .collect();
            assert_eq!(ref_ci.replicates, ci.replicates, "threads={threads}");
            assert_eq!(ref_band, band, "threads={threads}: CI band diverged");
        }
    }
}

/// The same contract holds for sliced analyses (the slice filter itself is
/// a chunked job), pinned on one fixed log rather than a proptest sweep.
#[test]
fn sliced_analysis_is_bit_identical_across_thread_counts() {
    let log = random_log(0x0D15_EA5E, 120_000);
    let slice = Slice::all()
        .action(ActionType::SelectMail)
        .class(UserClass::Business);
    let reference = AnalysisPlan::new(config(1))
        .run(PlanInput::slice(&log, &slice), RunOptions::default())
        .expect("reference analysis succeeds")
        .report;
    for threads in THREADS {
        let report = AnalysisPlan::new(config(threads))
            .run(PlanInput::slice(&log, &slice), RunOptions::default())
            .expect("parallel analysis succeeds")
            .report;
        assert_reports_identical(&reference, &report, &format!("threads={threads}"));
    }
}
