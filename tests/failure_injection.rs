//! Failure injection: malformed inputs, degenerate logs, and empty slices
//! must produce typed errors, never panics or silent garbage.

use autosens_core::{AnalysisPlan, AutoSensConfig, AutoSensError, PlanInput, RunOptions};
use autosens_sim::{generate, Scenario, SimConfig};
use autosens_telemetry::codec;
use autosens_telemetry::codec::CSV_HEADER;
use autosens_telemetry::query::Slice;
use autosens_telemetry::record::{ActionRecord, ActionType, Outcome, UserClass, UserId};
use autosens_telemetry::time::SimTime;
use autosens_telemetry::TelemetryLog;

fn rec(t: i64, latency: f64) -> ActionRecord {
    ActionRecord {
        time: SimTime(t),
        action: ActionType::SelectMail,
        latency_ms: latency,
        user: UserId(0),
        class: UserClass::Business,
        tz_offset_ms: 0,
        outcome: Outcome::Success,
    }
}

#[test]
fn empty_log_is_a_typed_error() {
    let plan = AnalysisPlan::new(AutoSensConfig::default());
    match plan.run(PlanInput::log(&TelemetryLog::new()), RunOptions::default()) {
        Err(AutoSensError::EmptySlice(_)) => {}
        other => panic!("expected EmptySlice, got {other:?}"),
    }
}

#[test]
fn slice_with_no_matches_is_a_typed_error() {
    let log = TelemetryLog::from_records(vec![rec(0, 100.0), rec(1000, 200.0)]).unwrap();
    let plan = AnalysisPlan::new(AutoSensConfig::default());
    let slice = Slice::all().action(ActionType::ComposeSend);
    assert!(matches!(
        plan.run(PlanInput::slice(&log, &slice), RunOptions::default()),
        Err(AutoSensError::EmptySlice(_))
    ));
}

#[test]
fn tiny_log_fails_with_insufficient_support() {
    let log = TelemetryLog::from_records((0..50).map(|i| rec(i * 1000, 300.0)).collect()).unwrap();
    let plan = AnalysisPlan::new(AutoSensConfig::default());
    match plan.run(PlanInput::log(&log), RunOptions::default()) {
        Err(AutoSensError::InsufficientSupport { .. }) => {}
        other => panic!("expected InsufficientSupport, got {other:?}"),
    }
}

#[test]
fn constant_latency_log_cannot_support_a_curve() {
    // Plenty of records, but all in one bin: no curve can be fitted.
    let log = TelemetryLog::from_records((0..5000).map(|i| rec(i * 100, 305.0)).collect()).unwrap();
    let plan = AnalysisPlan::new(AutoSensConfig::default());
    assert!(matches!(
        plan.run(PlanInput::log(&log), RunOptions::default()),
        Err(AutoSensError::InsufficientSupport { .. })
    ));
}

#[test]
fn reference_outside_observed_range_is_reported() {
    // All latencies far above the 300 ms reference.
    let records: Vec<ActionRecord> = (0..20_000)
        .map(|i| rec(i * 100, 1500.0 + (i % 800) as f64))
        .collect();
    let log = TelemetryLog::from_records(records).unwrap();
    let plan = AnalysisPlan::new(AutoSensConfig::default());
    match plan.run(PlanInput::log(&log), RunOptions::default()) {
        Err(AutoSensError::ReferenceUnsupported { reference_ms }) => {
            assert_eq!(reference_ms, 300.0)
        }
        other => panic!("expected ReferenceUnsupported, got {other:?}"),
    }
}

#[test]
fn invalid_config_is_rejected_before_analysis() {
    let cfg = AutoSensConfig {
        savgol_window: 4, // must be odd
        ..AutoSensConfig::default()
    };
    let plan = AnalysisPlan::new(cfg);
    let log = TelemetryLog::from_records(vec![rec(0, 100.0)]).unwrap();
    assert!(matches!(
        plan.run(PlanInput::log(&log), RunOptions::default()),
        Err(AutoSensError::BadConfig(_))
    ));
}

#[test]
fn malformed_csv_rows_are_rejected_with_line_numbers() {
    let data = format!(
        "{CSV_HEADER}\n\
         1000,SelectMail,100.0,1,Business,0,Success\n\
         2000,SelectMail,not-a-number,1,Business,0,Success\n"
    );
    match codec::read_csv(data.as_bytes()) {
        Err(autosens_telemetry::TelemetryError::Malformed { line, .. }) => assert_eq!(line, 3),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn lenient_csv_parsing_salvages_good_rows() {
    let data = format!(
        "{CSV_HEADER}\n\
         1000,SelectMail,100.0,1,Business,0,Success\n\
         garbage line\n\
         2000,Search,200.0,2,Consumer,0,Success\n\
         3000,SelectMail,NaN,3,Business,0,Success\n\
         4000,SelectMail,-5.0,3,Business,0,Success\n"
    );
    let (log, errors) = codec::read_csv_lenient(data.as_bytes()).expect("io ok");
    assert_eq!(log.len(), 2);
    assert_eq!(errors.len(), 3);
}

#[test]
fn simulator_rejects_invalid_configs_without_panicking() {
    let mut cfg = SimConfig::scenario(Scenario::Smoke);
    cfg.congestion.rho = 1.5;
    assert!(generate(&cfg).is_err());
    let mut cfg = SimConfig::scenario(Scenario::Smoke);
    cfg.error_rate = -0.1;
    assert!(generate(&cfg).is_err());
}

#[test]
fn unsorted_log_errors_surface_through_the_pipeline() {
    let mut log = TelemetryLog::new();
    log.push(rec(1000, 100.0)).unwrap();
    log.push(rec(0, 100.0)).unwrap();
    // The raw store is unsorted; direct range queries must fail loudly...
    assert!(log.range(SimTime(0), SimTime(10_000)).is_err());
    // ...while the engine sorts slices internally: the analysis proceeds
    // past sortedness and fails only for lack of data (either the support
    // check or, when the alpha gate excludes the lone slot first, an empty
    // pooled histogram).
    let plan = AnalysisPlan::new(AutoSensConfig::default());
    assert!(matches!(
        plan.run(PlanInput::log(&log), RunOptions::default()),
        Err(AutoSensError::InsufficientSupport { .. } | AutoSensError::EmptySlice(_))
    ));
}

#[test]
fn injected_chunk_panic_surfaces_as_typed_error() {
    // A worker panic inside a scheduler chunk must come back as a typed
    // `AutoSensError`, never a hang or a partially merged result.
    let records: Vec<ActionRecord> = (0..30_000)
        .map(|i| rec(i * 100, 100.0 + (i % 900) as f64))
        .collect();
    let log = TelemetryLog::from_records(records).unwrap();
    let cfg = AutoSensConfig {
        alpha_correction: false,
        threads: 2,
        ..AutoSensConfig::default()
    };
    let plan = AnalysisPlan::new(cfg);
    let ci_run = || {
        plan.run(
            PlanInput::slice(&log, &Slice::all()),
            RunOptions::with_ci(20, 0.95),
        )
    };
    // Sanity: the same analysis succeeds while no fault is armed.
    ci_run().expect("clean run succeeds");

    autosens_exec::faults::arm_chunk_panic(autosens_core::ci::CI_CHUNK_LABEL, 0);
    let result = ci_run();
    autosens_exec::faults::disarm_chunk_panic();
    match result {
        Err(AutoSensError::Internal(msg)) => {
            assert!(msg.contains(autosens_core::ci::CI_CHUNK_LABEL), "{msg}");
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    // The hook is disarmed: the pipeline is healthy again.
    ci_run().expect("post-fault run succeeds");
}

#[test]
fn nan_and_negative_latencies_never_enter_a_log() {
    let mut log = TelemetryLog::new();
    assert!(log.push(rec(0, f64::NAN)).is_err());
    assert!(log.push(rec(0, -1.0)).is_err());
    assert!(log.push(rec(0, f64::INFINITY)).is_err());
    assert!(log.is_empty());
}
